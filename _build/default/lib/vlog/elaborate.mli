(** Elaboration of parsed Verilog into {!Hw.Netlist} circuits.

    Width/sign rules (a documented simplification of IEEE 1364):
    - identifiers carry their declared width and are unsigned unless
      wrapped in [$signed];
    - sized literals have their size, unsized ones 32 bits;
    - arithmetic/bitwise binaries extend both operands to the larger width
      (sign-extending only when both sides are signed) and keep that width;
    - comparisons yield one bit (signed comparison iff both operands are
      signed); shifts keep the left width; concatenation sums widths;
    - assignments truncate or extend to the target width.

    [clk] and [rst] ports are structural: the pattern
    [always @(posedge clk) if (rst) q <= <const>; else <body>] maps [q] to
    a register with that reset value.  Later non-blocking assignments to
    the same register within one process take priority, as in Verilog.

    Instances of modules defined in the same source are elaborated once
    and stamped; instance outputs must be connected to plain wires. *)

val elaborate : ?top:string -> Ast.design -> Hw.Netlist.t
(** [top] defaults to the last module.  @raise Failure on undriven or
    multiply-driven wires, combinational loops through wires, unknown
    modules or width errors. *)

val circuit_of_string : ?top:string -> string -> Hw.Netlist.t
(** Parse then elaborate. *)
