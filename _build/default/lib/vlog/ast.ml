

type expr =
  | Id of string
  | Number of { width : int option; value : int }
  | Unary of [ `Neg | `Not ] * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr
  | Index of string * expr           
  | Range of string * int * int      
  | Concat of expr list
  | Repeat of int * expr             
  | Signed of expr                   

and binop =
  | Plus | Minus | Times
  | Shl | Shr | Ashr
  | BAnd | BOr | BXor
  | LAnd | LOr
  | Lt | Le | Gt | Ge | EqEq | Neq

type stmt =
  | Nonblocking of string * expr     
  | If of expr * stmt list * stmt list

type item =
  | Decl of { kind : [ `Wire | `Reg ]; width : int; names : string list }
  | Port_decl of { dir : [ `In | `Out ]; width : int; names : string list }
  | Assign of string * expr
  | Always of stmt list              
  | Instance of { module_name : string; instance_name : string;
                  connections : (string * expr) list }

type module_def = { name : string; ports : string list; items : item list }

type design = module_def list
