(** AST of the structural Verilog subset (the paper's baseline language).

    The subset covers synthesizable RTL as used by the baseline designs:
    module ports, [wire]/[reg] declarations with ranges, continuous
    assignments, [always @(posedge clk)] processes with [if]/[else] and
    non-blocking assignments, and module instantiation with named port
    connections.  See {!Parse} for the concrete syntax and {!Elaborate}
    for the width rules. *)

type expr =
  | Id of string
  | Number of { width : int option; value : int }
  | Unary of [ `Neg | `Not ] * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr
  | Index of string * expr           (** [x[i]] with a constant index *)
  | Range of string * int * int      (** [x[h:l]] *)
  | Concat of expr list
  | Repeat of int * expr             (** [{n{x}}] *)
  | Signed of expr                   (** [$signed(x)] *)

and binop =
  | Plus | Minus | Times
  | Shl | Shr | Ashr
  | BAnd | BOr | BXor
  | LAnd | LOr
  | Lt | Le | Gt | Ge | EqEq | Neq

type stmt =
  | Nonblocking of string * expr     (** [q <= e] *)
  | If of expr * stmt list * stmt list

type item =
  | Decl of { kind : [ `Wire | `Reg ]; width : int; names : string list }
  | Port_decl of { dir : [ `In | `Out ]; width : int; names : string list }
  | Assign of string * expr
  | Always of stmt list              (** [always @(posedge clk)] body *)
  | Instance of { module_name : string; instance_name : string;
                  connections : (string * expr) list }

type module_def = { name : string; ports : string list; items : item list }

type design = module_def list
