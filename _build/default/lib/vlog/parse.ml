exception Syntax_error of string

(* ---------------- lexer ---------------- *)

type token =
  | ID of string
  | NUM of int option * int          (* width (if sized), value *)
  | PUNCT of string
  | EOF

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
}

let error lx fmt =
  Printf.ksprintf (fun m -> raise (Syntax_error (Printf.sprintf "line %d: %s" lx.line m))) fmt

let is_id_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
        lx.pos <- lx.pos + 2;
        let rec go () =
          if lx.pos + 1 >= String.length lx.src then error lx "unterminated comment"
          else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
            lx.pos <- lx.pos + 2
          else begin
            if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
            lx.pos <- lx.pos + 1;
            go ()
          end
        in
        go ();
        skip_ws lx
    | _ -> ()

let read_digits lx base =
  let buf = Buffer.create 8 in
  let ok c =
    match base with
    | 10 -> is_digit c
    | 16 -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    | 2 -> c = '0' || c = '1'
    | _ -> false
  in
  while
    lx.pos < String.length lx.src
    && (ok lx.src.[lx.pos] || lx.src.[lx.pos] = '_')
  do
    if lx.src.[lx.pos] <> '_' then Buffer.add_char buf lx.src.[lx.pos];
    lx.pos <- lx.pos + 1
  done;
  if Buffer.length buf = 0 then error lx "expected digits";
  int_of_string
    ((match base with 16 -> "0x" | 2 -> "0b" | _ -> "") ^ Buffer.contents buf)

let next_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then EOF
  else
    let c = lx.src.[lx.pos] in
    if is_digit c then begin
      let v = read_digits lx 10 in
      skip_ws lx;
      if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\'' then begin
        lx.pos <- lx.pos + 1;
        let base =
          match lx.src.[lx.pos] with
          | 'd' | 'D' -> 10
          | 'h' | 'H' -> 16
          | 'b' | 'B' -> 2
          | c -> error lx "unknown base '%c'" c
        in
        lx.pos <- lx.pos + 1;
        skip_ws lx;
        NUM (Some v, read_digits lx base)
      end
      else NUM (None, v)
    end
    else if is_id_char c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_id_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      ID (String.sub lx.src start (lx.pos - start))
    end
    else begin
      let two =
        if lx.pos + 1 < String.length lx.src then
          String.sub lx.src lx.pos 2
        else ""
      in
      let three =
        if lx.pos + 2 < String.length lx.src then
          String.sub lx.src lx.pos 3
        else ""
      in
      if three = ">>>" then begin
        lx.pos <- lx.pos + 3;
        PUNCT ">>>"
      end
      else if List.mem two [ "<="; ">="; "=="; "!="; "<<"; ">>"; "&&"; "||" ]
      then begin
        lx.pos <- lx.pos + 2;
        PUNCT two
      end
      else begin
        lx.pos <- lx.pos + 1;
        PUNCT (String.make 1 c)
      end
    end

let advance lx = lx.tok <- next_token lx

let make_lexer src =
  let lx = { src; pos = 0; line = 1; tok = EOF } in
  advance lx;
  lx

(* ---------------- parser helpers ---------------- *)

let eat_punct lx p =
  match lx.tok with
  | PUNCT q when q = p -> advance lx
  | _ -> error lx "expected '%s'" p

let eat_kw lx kw =
  match lx.tok with
  | ID i when i = kw -> advance lx
  | _ -> error lx "expected '%s'" kw

let expect_id lx =
  match lx.tok with
  | ID i ->
      advance lx;
      i
  | _ -> error lx "expected an identifier"

let at_punct lx p = match lx.tok with PUNCT q -> q = p | _ -> false
let at_kw lx k = match lx.tok with ID i -> i = k | _ -> false

let expect_const lx =
  match lx.tok with
  | NUM (_, v) ->
      advance lx;
      v
  | _ -> error lx "expected a constant"

(* ---------------- expressions ---------------- *)

let rec parse_ternary lx =
  let c = parse_lor lx in
  if at_punct lx "?" then begin
    advance lx;
    let t = parse_ternary lx in
    eat_punct lx ":";
    let f = parse_ternary lx in
    Ast.Ternary (c, t, f)
  end
  else c

and binlevel lx sub table =
  let left = ref (sub lx) in
  let rec go () =
    match lx.tok with
    | PUNCT p when List.mem_assoc p table ->
        advance lx;
        let right = sub lx in
        left := Ast.Binary (List.assoc p table, !left, right);
        go ()
    | _ -> ()
  in
  go ();
  !left

and parse_lor lx = binlevel lx parse_land [ ("||", Ast.LOr) ]
and parse_land lx = binlevel lx parse_bor [ ("&&", Ast.LAnd) ]
and parse_bor lx = binlevel lx parse_bxor [ ("|", Ast.BOr) ]
and parse_bxor lx = binlevel lx parse_band [ ("^", Ast.BXor) ]
and parse_band lx = binlevel lx parse_eq [ ("&", Ast.BAnd) ]
and parse_eq lx = binlevel lx parse_rel [ ("==", Ast.EqEq); ("!=", Ast.Neq) ]

and parse_rel lx =
  binlevel lx parse_shift
    [ ("<", Ast.Lt); ("<=", Ast.Le); (">", Ast.Gt); (">=", Ast.Ge) ]

and parse_shift lx =
  binlevel lx parse_add [ ("<<", Ast.Shl); (">>", Ast.Shr); (">>>", Ast.Ashr) ]

and parse_add lx = binlevel lx parse_mul [ ("+", Ast.Plus); ("-", Ast.Minus) ]
and parse_mul lx = binlevel lx parse_unary [ ("*", Ast.Times) ]

and parse_unary lx =
  if at_punct lx "-" then begin
    advance lx;
    Ast.Unary (`Neg, parse_unary lx)
  end
  else if at_punct lx "~" then begin
    advance lx;
    Ast.Unary (`Not, parse_unary lx)
  end
  else parse_primary lx

and parse_primary lx =
  match lx.tok with
  | NUM (w, v) ->
      advance lx;
      Ast.Number { width = w; value = v }
  | PUNCT "(" ->
      advance lx;
      let e = parse_ternary lx in
      eat_punct lx ")";
      e
  | PUNCT "{" -> (
      advance lx;
      (* replication {n{x}} or concatenation {a, b, ...} *)
      match lx.tok with
      | NUM (None, n) when n > 0 ->
          let save_pos = lx.pos and save_tok = lx.tok and save_line = lx.line in
          advance lx;
          if at_punct lx "{" then begin
            advance lx;
            let e = parse_ternary lx in
            eat_punct lx "}";
            eat_punct lx "}";
            Ast.Repeat (n, e)
          end
          else begin
            (* plain concat starting with a number: rewind *)
            lx.pos <- save_pos;
            lx.tok <- save_tok;
            lx.line <- save_line;
            parse_concat lx
          end
      | _ -> parse_concat lx)
  | ID "$signed" ->
      advance lx;
      eat_punct lx "(";
      let e = parse_ternary lx in
      eat_punct lx ")";
      Ast.Signed e
  | ID name -> (
      advance lx;
      if at_punct lx "[" then begin
        advance lx;
        let hi = parse_ternary lx in
        if at_punct lx ":" then begin
          advance lx;
          let lo = expect_const lx in
          eat_punct lx "]";
          match hi with
          | Ast.Number { value; _ } -> Ast.Range (name, value, lo)
          | _ -> error lx "part-select bounds must be constants"
        end
        else begin
          eat_punct lx "]";
          Ast.Index (name, hi)
        end
      end
      else Ast.Id name)
  | PUNCT p -> error lx "unexpected '%s' in expression" p
  | EOF -> error lx "unexpected end of file in expression"

and parse_concat lx =
  let rec go acc =
    let e = parse_ternary lx in
    if at_punct lx "," then begin
      advance lx;
      go (e :: acc)
    end
    else begin
      eat_punct lx "}";
      List.rev (e :: acc)
    end
  in
  Ast.Concat (go [])

(* ---------------- statements ---------------- *)

let rec parse_stmt lx : Ast.stmt list =
  if at_kw lx "begin" then begin
    advance lx;
    let rec go acc =
      if at_kw lx "end" then begin
        advance lx;
        List.rev acc
      end
      else go (List.rev_append (parse_stmt lx) acc)
    in
    go []
  end
  else if at_kw lx "if" then begin
    advance lx;
    eat_punct lx "(";
    let c = parse_ternary lx in
    eat_punct lx ")";
    let th = parse_stmt lx in
    let el =
      if at_kw lx "else" then begin
        advance lx;
        parse_stmt lx
      end
      else []
    in
    [ Ast.If (c, th, el) ]
  end
  else begin
    let target = expect_id lx in
    eat_punct lx "<=";
    let e = parse_ternary lx in
    eat_punct lx ";";
    [ Ast.Nonblocking (target, e) ]
  end

(* ---------------- module items ---------------- *)

let parse_range_opt lx =
  if at_punct lx "[" then begin
    advance lx;
    let hi = expect_const lx in
    eat_punct lx ":";
    let lo = expect_const lx in
    eat_punct lx "]";
    if lo <> 0 then error lx "ranges must end at 0";
    hi + 1
  end
  else 1

let parse_name_list lx =
  let rec go acc =
    let n = expect_id lx in
    if at_punct lx "," then begin
      advance lx;
      go (n :: acc)
    end
    else begin
      eat_punct lx ";";
      List.rev (n :: acc)
    end
  in
  go []

let parse_item lx : Ast.item list =
  if at_kw lx "input" || at_kw lx "output" then begin
    let dir = if at_kw lx "input" then `In else `Out in
    advance lx;
    if at_kw lx "wire" || at_kw lx "reg" then advance lx;
    let width = parse_range_opt lx in
    [ Ast.Port_decl { dir; width; names = parse_name_list lx } ]
  end
  else if at_kw lx "wire" || at_kw lx "reg" then begin
    let kind = if at_kw lx "wire" then `Wire else `Reg in
    advance lx;
    let width = parse_range_opt lx in
    let first = expect_id lx in
    (* wire [..] x = expr; is declaration plus continuous assignment *)
    if at_punct lx "=" then begin
      advance lx;
      let e = parse_ternary lx in
      eat_punct lx ";";
      if kind = `Reg then error lx "reg initializers are not supported";
      [ Ast.Decl { kind; width; names = [ first ] }; Ast.Assign (first, e) ]
    end
    else if at_punct lx "," then begin
      advance lx;
      let rest = parse_name_list lx in
      [ Ast.Decl { kind; width; names = first :: rest } ]
    end
    else begin
      eat_punct lx ";";
      [ Ast.Decl { kind; width; names = [ first ] } ]
    end
  end
  else if at_kw lx "assign" then begin
    advance lx;
    let name = expect_id lx in
    eat_punct lx "=";
    let e = parse_ternary lx in
    eat_punct lx ";";
    [ Ast.Assign (name, e) ]
  end
  else if at_kw lx "always" then begin
    advance lx;
    eat_punct lx "@";
    eat_punct lx "(";
    eat_kw lx "posedge";
    let _clk = expect_id lx in
    eat_punct lx ")";
    [ Ast.Always (parse_stmt lx) ]
  end
  else begin
    (* module instance: Name inst (.port(expr), ...); *)
    let module_name = expect_id lx in
    let instance_name = expect_id lx in
    eat_punct lx "(";
    let rec conns acc =
      eat_punct lx ".";
      let port = expect_id lx in
      eat_punct lx "(";
      let e = parse_ternary lx in
      eat_punct lx ")";
      if at_punct lx "," then begin
        advance lx;
        conns ((port, e) :: acc)
      end
      else begin
        eat_punct lx ")";
        eat_punct lx ";";
        List.rev ((port, e) :: acc)
      end
    in
    [ Ast.Instance { module_name; instance_name; connections = conns [] } ]
  end

let parse_module lx : Ast.module_def =
  eat_kw lx "module";
  let name = expect_id lx in
  eat_punct lx "(";
  let rec ports acc =
    let p = expect_id lx in
    if at_punct lx "," then begin
      advance lx;
      ports (p :: acc)
    end
    else begin
      eat_punct lx ")";
      eat_punct lx ";";
      List.rev (p :: acc)
    end
  in
  let ports = ports [] in
  let rec items acc =
    if at_kw lx "endmodule" then begin
      advance lx;
      List.rev acc
    end
    else items (List.rev_append (parse_item lx) acc)
  in
  { Ast.name; ports; items = items [] }

let design src =
  let lx = make_lexer src in
  let rec go acc =
    match lx.tok with
    | EOF -> List.rev acc
    | _ -> go (parse_module lx :: acc)
  in
  go []

let expr_of_string src =
  let lx = make_lexer src in
  parse_ternary lx
