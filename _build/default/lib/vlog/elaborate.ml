open Hw

type value = { s : Builder.s; signed_ : bool }

type wire_state = Visiting | Done of value

type menv = {
  b : Builder.t;
  design : Ast.design;
  submodules : (string, Netlist.t) Hashtbl.t;   (* shared across the design *)
  widths : (string, int) Hashtbl.t;             (* declared widths *)
  drivers : (string, Ast.expr) Hashtbl.t;       (* wires driven by assign *)
  state : (string, wire_state) Hashtbl.t;
  values : (string, value) Hashtbl.t;           (* inputs, regs, instance outs *)
}

let fail fmt = Printf.ksprintf failwith fmt

let width_of env name =
  match Hashtbl.find_opt env.widths name with
  | Some w -> w
  | None -> fail "vlog: undeclared identifier %s" name

let resize env v w =
  let s =
    if Builder.width v.s = w then v.s
    else if Builder.width v.s > w then Builder.slice env.b v.s ~hi:(w - 1) ~lo:0
    else if v.signed_ then Builder.sext env.b v.s w
    else Builder.uext env.b v.s w
  in
  { v with s }

let rec eval env (e : Ast.expr) : value =
  match e with
  | Ast.Id name -> lookup env name
  | Ast.Number { width; value } ->
      let w = Option.value width ~default:32 in
      { s = Builder.const env.b ~width:w value; signed_ = false }
  | Ast.Signed e -> { (eval env e) with signed_ = true }
  | Ast.Unary (`Neg, e) ->
      let v = eval env e in
      { s = Builder.neg env.b v.s; signed_ = v.signed_ }
  | Ast.Unary (`Not, e) ->
      let v = eval env e in
      { s = Builder.not_ env.b v.s; signed_ = v.signed_ }
  | Ast.Index (name, idx) -> (
      let v = lookup env name in
      match eval_const idx with
      | Some i -> { s = Builder.bit env.b v.s i; signed_ = false }
      | None ->
          (* dynamic bit select: (x >> i)[0] *)
          let i = eval env idx in
          let shifted = Builder.shr env.b v.s i.s in
          { s = Builder.bit env.b shifted 0; signed_ = false })
  | Ast.Range (name, hi, lo) ->
      let v = lookup env name in
      { s = Builder.slice env.b v.s ~hi ~lo; signed_ = false }
  | Ast.Concat es ->
      let vs = List.map (fun e -> (eval env e).s) es in
      { s = Builder.concat_list env.b vs; signed_ = false }
  | Ast.Repeat (n, e) ->
      let v = (eval env e).s in
      { s = Builder.concat_list env.b (List.init n (fun _ -> v)); signed_ = false }
  | Ast.Ternary (c, t, f) ->
      let c = to_bool env (eval env c) in
      let vt = eval env t and vf = eval env f in
      let w = max (Builder.width vt.s) (Builder.width vf.s) in
      let signed_ = vt.signed_ && vf.signed_ in
      let ext v = (resize env { v with signed_ = v.signed_ } w).s in
      { s = Builder.mux env.b c (ext vt) (ext vf); signed_ }
  | Ast.Binary (op, x, y) -> (
      let vx = eval env x and vy = eval env y in
      let both_signed = vx.signed_ && vy.signed_ in
      let w = max (Builder.width vx.s) (Builder.width vy.s) in
      let ext v =
        if Builder.width v.s = w then v.s
        else if v.signed_ && both_signed then Builder.sext env.b v.s w
        else if Builder.width v.s < w then
          if both_signed then Builder.sext env.b v.s w
          else Builder.uext env.b v.s w
        else v.s
      in
      let arith f = { s = f env.b (ext vx) (ext vy); signed_ = both_signed } in
      let cmp f = { s = f env.b ~signed:both_signed (ext vx) (ext vy); signed_ = false } in
      match op with
      | Ast.Plus -> arith Builder.add
      | Ast.Minus -> arith Builder.sub
      | Ast.Times -> arith Builder.mul
      | Ast.BAnd -> arith Builder.and_
      | Ast.BOr -> arith Builder.or_
      | Ast.BXor -> arith Builder.xor_
      | Ast.Shl -> { s = Builder.shl env.b vx.s vy.s; signed_ = vx.signed_ }
      | Ast.Shr -> { s = Builder.shr env.b vx.s vy.s; signed_ = false }
      | Ast.Ashr -> { s = Builder.sra env.b vx.s vy.s; signed_ = vx.signed_ }
      | Ast.Lt -> cmp Builder.lt
      | Ast.Le -> cmp Builder.le
      | Ast.Gt -> cmp Builder.gt
      | Ast.Ge -> cmp Builder.ge
      | Ast.EqEq -> { s = Builder.eq env.b (ext vx) (ext vy); signed_ = false }
      | Ast.Neq -> { s = Builder.ne env.b (ext vx) (ext vy); signed_ = false }
      | Ast.LAnd ->
          let bx = to_bool env vx and by = to_bool env vy in
          { s = Builder.and_ env.b bx by; signed_ = false }
      | Ast.LOr ->
          let bx = to_bool env vx and by = to_bool env vy in
          { s = Builder.or_ env.b bx by; signed_ = false })

and to_bool env v =
  if Builder.width v.s = 1 then v.s
  else Builder.ne env.b v.s (Builder.zero env.b (Builder.width v.s))

and eval_const (e : Ast.expr) =
  match e with Ast.Number { value; _ } -> Some value | _ -> None

and lookup env name =
  match Hashtbl.find_opt env.values name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt env.state name with
      | Some (Done v) -> v
      | Some Visiting -> fail "vlog: combinational loop through wire %s" name
      | None -> (
          match Hashtbl.find_opt env.drivers name with
          | Some e ->
              Hashtbl.replace env.state name Visiting;
              let v = resize env (eval env e) (width_of env name) in
              let v = { v with signed_ = false } in
              Hashtbl.replace env.state name (Done v);
              v
          | None -> fail "vlog: wire %s has no driver" name))

(* ---------------- always blocks ---------------- *)

(* Flatten a process into guarded assignments in textual order. *)
let rec flatten_stmts env guard (stmts : Ast.stmt list) acc =
  List.fold_left
    (fun acc st ->
      match st with
      | Ast.Nonblocking (q, e) -> (q, guard, e) :: acc
      | Ast.If (c, th, el) ->
          let cv = to_bool env (eval env c) in
          let gt =
            match guard with
            | None -> Some cv
            | Some g -> Some (Builder.and_ env.b g cv)
          in
          let nc = Builder.not_ env.b cv in
          let gf =
            match guard with
            | None -> Some nc
            | Some g -> Some (Builder.and_ env.b g nc)
          in
          flatten_stmts env gf el (flatten_stmts env gt th acc))
    acc stmts

(* ---------------- module elaboration ---------------- *)

let find_module design name =
  match List.find_opt (fun (m : Ast.module_def) -> m.Ast.name = name) design with
  | Some m -> m
  | None -> fail "vlog: unknown module %s" name

let rec elaborate_module design submodules (m : Ast.module_def) : Netlist.t =
  let b = Builder.create m.Ast.name in
  let env =
    {
      b;
      design;
      submodules;
      widths = Hashtbl.create 64;
      drivers = Hashtbl.create 64;
      state = Hashtbl.create 64;
      values = Hashtbl.create 64;
    }
  in
  let inputs = ref [] and outputs = ref [] and regs = ref [] in
  (* Pass 1: declarations. *)
  List.iter
    (fun (item : Ast.item) ->
      match item with
      | Ast.Port_decl { dir; width; names } ->
          List.iter
            (fun n ->
              Hashtbl.replace env.widths n width;
              match dir with
              | `In ->
                  if n <> "clk" && n <> "rst" then inputs := n :: !inputs
              | `Out -> outputs := n :: !outputs)
            names
      | Ast.Decl { kind; width; names } ->
          List.iter
            (fun n ->
              Hashtbl.replace env.widths n width;
              if kind = `Reg then regs := n :: !regs)
            names
      | Ast.Assign _ | Ast.Always _ | Ast.Instance _ -> ())
    m.Ast.items;
  (* Port order from the header. *)
  List.iter
    (fun p ->
      if List.mem p !inputs then
        Hashtbl.replace env.values p
          { s = Builder.input b p (width_of env p); signed_ = false })
    m.Ast.ports;
  (* Reset values from the [if (rst)] idiom, collected syntactically so
     registers can be created with the right init. *)
  let reset_values = Hashtbl.create 16 in
  List.iter
    (fun (item : Ast.item) ->
      match item with
      | Ast.Always [ Ast.If (Ast.Id "rst", th, _) ] ->
          List.iter
            (fun st ->
              match st with
              | Ast.Nonblocking (q, Ast.Number { value; _ }) ->
                  Hashtbl.replace reset_values q value
              | Ast.Nonblocking _ | Ast.If _ ->
                  fail "vlog: reset branch must assign constants")
            th
      | _ -> ())
    m.Ast.items;
  (* Registers are created before anything reads them. *)
  let reg_sigs = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let init = Option.value ~default:0 (Hashtbl.find_opt reset_values r) in
      let q = Builder.reg b ~init ~width:(width_of env r) r in
      Hashtbl.replace reg_sigs r q;
      Hashtbl.replace env.values r { s = q; signed_ = false })
    !regs;
  (* Pass 2a: record every continuous-assignment driver first, so later
     items can refer to wires declared anywhere in the module. *)
  List.iter
    (fun (item : Ast.item) ->
      match item with
      | Ast.Assign (name, e) ->
          if Hashtbl.mem env.drivers name then
            fail "vlog: wire %s driven twice" name;
          Hashtbl.replace env.drivers name e
      | _ -> ())
    m.Ast.items;
  (* Pass 2b: elaborate instances and processes. *)
  List.iter
    (fun (item : Ast.item) ->
      match item with
      | Ast.Assign _ -> ()
      | Ast.Instance { module_name; instance_name; connections } ->
          let sub =
            match Hashtbl.find_opt submodules module_name with
            | Some c -> c
            | None ->
                let c =
                  elaborate_module design submodules
                    (find_module design module_name)
                in
                Hashtbl.replace submodules module_name c;
                c
          in
          let in_bindings =
            List.filter_map
              (fun (port, u) ->
                match List.assoc_opt port connections with
                | Some e ->
                    let w = (Netlist.node sub u).Netlist.width in
                    Some (port, (resize env (eval env e) w).s)
                | None -> fail "vlog: %s: input %s unconnected" instance_name port)
              sub.Netlist.inputs
          in
          let outs = Instantiate.stamp b sub ~inputs:in_bindings in
          List.iter
            (fun (port, s) ->
              match List.assoc_opt port connections with
              | Some (Ast.Id wire) ->
                  if Hashtbl.mem env.values wire || Hashtbl.mem env.drivers wire
                  then fail "vlog: wire %s driven twice" wire;
                  let v = resize env { s; signed_ = false } (width_of env wire) in
                  Hashtbl.replace env.values wire v
              | Some _ -> fail "vlog: instance outputs must connect to wires"
              | None -> ())
            outs
      | Ast.Always stmts ->
          (* Reset idiom: if (rst) q <= <const>; else <rest>.  The reset
             constants were folded into register inits above. *)
          let stmts =
            match stmts with
            | [ Ast.If (Ast.Id "rst", _, el) ] -> el
            | _ -> stmts
          in
          let assigns = List.rev (flatten_stmts env None stmts []) in
          let by_reg = Hashtbl.create 8 in
          List.iter
            (fun (q, g, e) ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt by_reg q) in
              Hashtbl.replace by_reg q (cur @ [ (g, e) ]))
            assigns;
          Hashtbl.iter
            (fun q gs ->
              let qsig =
                match Hashtbl.find_opt reg_sigs q with
                | Some s -> s
                | None -> fail "vlog: %s assigned in always but not a reg" q
              in
              let w = width_of env q in
              let d =
                List.fold_left
                  (fun acc (g, e) ->
                    let v = (resize env (eval env e) w).s in
                    match g with
                    | None -> v
                    | Some g -> Builder.mux env.b g v acc)
                  qsig gs
              in
              Builder.connect b qsig d)
            by_reg
      | Ast.Port_decl _ | Ast.Decl _ -> ())
    m.Ast.items;
  (* Outputs: force elaboration of their drivers. *)
  List.iter
    (fun p ->
      if List.mem p !outputs then
        let v = lookup env p in
        Builder.output b p (resize env v (width_of env p)).s)
    m.Ast.ports;
  Builder.finalize b

let elaborate ?top (design : Ast.design) =
  if design = [] then fail "vlog: empty design";
  let top_mod =
    match top with
    | Some name -> find_module design name
    | None -> List.nth design (List.length design - 1)
  in
  elaborate_module design (Hashtbl.create 4) top_mod

let circuit_of_string ?top src = elaborate ?top (Parse.design src)
