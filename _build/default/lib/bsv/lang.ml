type expr =
  | Const of Hw.Bits.t
  | Read of reg
  | In of string * int
  | Unop of Hw.Netlist.unop * expr
  | Binop of Hw.Netlist.binop * expr * expr
  | Mux of expr * expr * expr
  | Slice of expr * int * int
  | Uext of expr * int
  | Sext of expr * int

and reg = { rid : int; rname : string; rwidth : int; rinit : int }

type action = { target : reg; when_ : expr option; value : expr }

type rule = { rule_name : string; guard : expr; actions : action list }

type modul = {
  mod_name : string;
  inputs : (string * int) list;
  regs : reg list;
  rules : rule list;
  outputs : (string * expr) list;
}

let rec infer_width = function
  | Const b -> Hw.Bits.width b
  | Read r -> r.rwidth
  | In (_, w) -> w
  | Unop (_, e) -> infer_width e
  | Binop ((Eq | Ne | Lt _ | Le _), a, b) ->
      let wa = infer_width a and wb = infer_width b in
      if wa <> wb then
        failwith
          (Printf.sprintf "Bsv: comparison width mismatch (%d vs %d)" wa wb);
      1
  | Binop ((Shl | Shr | Sra), a, _) -> infer_width a
  | Binop (_, a, b) ->
      let wa = infer_width a and wb = infer_width b in
      if wa <> wb then
        failwith (Printf.sprintf "Bsv: operand width mismatch (%d vs %d)" wa wb);
      wa
  | Mux (s, a, b) ->
      if infer_width s <> 1 then failwith "Bsv: mux select must be 1 bit";
      let wa = infer_width a and wb = infer_width b in
      if wa <> wb then
        failwith (Printf.sprintf "Bsv: mux arm width mismatch (%d vs %d)" wa wb);
      wa
  | Slice (e, hi, lo) ->
      let w = infer_width e in
      if lo < 0 || hi >= w || hi < lo then
        failwith (Printf.sprintf "Bsv: slice [%d:%d] of width %d" hi lo w);
      hi - lo + 1
  | Uext (e, w) | Sext (e, w) ->
      let we = infer_width e in
      if w < we then failwith "Bsv: extension narrows";
      w

let validate m =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r.rid then
        failwith (Printf.sprintf "Bsv: duplicate register id %d" r.rid);
      Hashtbl.replace seen r.rid ())
    m.regs;
  let names = Hashtbl.create 16 in
  List.iter
    (fun (ru : rule) ->
      if Hashtbl.mem names ru.rule_name then
        failwith (Printf.sprintf "Bsv: duplicate rule %s" ru.rule_name);
      Hashtbl.replace names ru.rule_name ();
      if infer_width ru.guard <> 1 then
        failwith (Printf.sprintf "Bsv: rule %s guard is not 1 bit" ru.rule_name);
      List.iter
        (fun a ->
          (match a.when_ with
          | Some w ->
              if infer_width w <> 1 then
                failwith
                  (Printf.sprintf "Bsv: rule %s condition is not 1 bit"
                     ru.rule_name)
          | None -> ());
          let wv = infer_width a.value in
          if wv <> a.target.rwidth then
            failwith
              (Printf.sprintf "Bsv: rule %s writes %d bits into %s (%d bits)"
                 ru.rule_name wv a.target.rname a.target.rwidth))
        ru.actions)
    m.rules;
  List.iter (fun (_, e) -> ignore (infer_width e)) m.outputs

let rec expr_reads acc = function
  | Const _ | In _ -> acc
  | Read r -> r.rid :: acc
  | Unop (_, e) | Slice (e, _, _) | Uext (e, _) | Sext (e, _) ->
      expr_reads acc e
  | Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Mux (s, a, b) -> expr_reads (expr_reads (expr_reads acc s) a) b

let dedup l = List.sort_uniq Int.compare l

let read_set (ru : rule) =
  let acc = expr_reads [] ru.guard in
  let acc =
    List.fold_left
      (fun acc a ->
        let acc = expr_reads acc a.value in
        match a.when_ with Some w -> expr_reads acc w | None -> acc)
      acc ru.actions
  in
  dedup acc

let write_set (ru : rule) = dedup (List.map (fun a -> a.target.rid) ru.actions)

type builder = {
  bname : string;
  mutable next_rid : int;
  mutable bregs : reg list;
  mutable binputs : (string * int) list;
  mutable brules : rule list;
  mutable bouts : (string * expr) list;
}

let builder bname =
  { bname; next_rid = 0; bregs = []; binputs = []; brules = []; bouts = [] }

let mk_reg b ?(init = 0) rname rwidth =
  let r = { rid = b.next_rid; rname; rwidth; rinit = init } in
  b.next_rid <- b.next_rid + 1;
  b.bregs <- r :: b.bregs;
  r

let mk_input b name w =
  if not (List.mem_assoc name b.binputs) then
    b.binputs <- b.binputs @ [ (name, w) ];
  In (name, w)

let mk_rule b name ~guard actions =
  b.brules <- b.brules @ [ { rule_name = name; guard; actions } ]

let mk_output b name e = b.bouts <- b.bouts @ [ (name, e) ]

let mk_module b =
  let m =
    {
      mod_name = b.bname;
      inputs = b.binputs;
      regs = List.rev b.bregs;
      rules = b.brules;
      outputs = b.bouts;
    }
  in
  validate m;
  m

let cst w v = Const (Hw.Bits.create ~width:w v)
let ( &&: ) a b = Binop (Hw.Netlist.And, a, b)
let ( ||: ) a b = Binop (Hw.Netlist.Or, a, b)
let not_ a = Unop (Hw.Netlist.Not, a)
let ( ==: ) a b = Binop (Hw.Netlist.Eq, a, b)
let ( <>: ) a b = Binop (Hw.Netlist.Ne, a, b)
let ( +: ) a b = Binop (Hw.Netlist.Add, a, b)
let ( -: ) a b = Binop (Hw.Netlist.Sub, a, b)
let assign ?when_ target value = { target; when_; value }
