open Hw

let compile_with_schedule ?(options = Options.default) (m : Lang.modul) =
  let sched = Sched.analyze ~options m in
  let b = Builder.create m.Lang.mod_name in
  let inputs = Hashtbl.create 8 in
  List.iter
    (fun (name, w) -> Hashtbl.replace inputs name (Builder.input b name w))
    m.Lang.inputs;
  let nregs =
    List.fold_left (fun acc r -> max acc (r.Lang.rid + 1)) 0 m.Lang.regs
  in
  let regq = Array.make nregs None in
  List.iter
    (fun (r : Lang.reg) ->
      regq.(r.Lang.rid) <-
        Some (Builder.reg b ~init:r.Lang.rinit ~width:r.Lang.rwidth r.Lang.rname))
    m.Lang.regs;
  let reg_sig rid =
    match regq.(rid) with Some s -> s | None -> failwith "unknown register"
  in
  let rec expr (e : Lang.expr) =
    match e with
    | Lang.Const k -> Builder.constb b k
    | Lang.Read r -> reg_sig r.Lang.rid
    | Lang.In (name, _) -> Hashtbl.find inputs name
    | Lang.Unop (Netlist.Not, x) -> Builder.not_ b (expr x)
    | Lang.Unop (Netlist.Neg, x) -> Builder.neg b (expr x)
    | Lang.Binop (op, x, y) -> (
        let sx = expr x and sy = expr y in
        match op with
        | Netlist.Add -> Builder.add b sx sy
        | Netlist.Sub -> Builder.sub b sx sy
        | Netlist.Mul -> Builder.mul b sx sy
        | Netlist.And -> Builder.and_ b sx sy
        | Netlist.Or -> Builder.or_ b sx sy
        | Netlist.Xor -> Builder.xor_ b sx sy
        | Netlist.Shl -> Builder.shl b sx sy
        | Netlist.Shr -> Builder.shr b sx sy
        | Netlist.Sra -> Builder.sra b sx sy
        | Netlist.Eq -> Builder.eq b sx sy
        | Netlist.Ne -> Builder.ne b sx sy
        | Netlist.Lt s -> Builder.lt b ~signed:(s = Netlist.Signed) sx sy
        | Netlist.Le s -> Builder.le b ~signed:(s = Netlist.Signed) sx sy)
    | Lang.Mux (s, x, y) -> Builder.mux b (expr s) (expr x) (expr y)
    | Lang.Slice (x, hi, lo) -> Builder.slice b (expr x) ~hi ~lo
    | Lang.Uext (x, w) -> Builder.uext b (expr x) w
    | Lang.Sext (x, w) -> Builder.sext b (expr x) w
  in
  let n = Array.length sched.Sched.rules in
  let can_fire =
    Array.map
      (fun (ru : Lang.rule) ->
        let g = expr ru.Lang.guard in
        if options.Options.aggressive_conditions then
          (* The rule is not worth firing if every action is disabled. *)
          let any_enabled =
            List.fold_left
              (fun acc (a : Lang.action) ->
                let en =
                  match a.Lang.when_ with
                  | None -> Builder.one b 1
                  | Some w -> expr w
                in
                match acc with
                | None -> Some en
                | Some x -> Some (Builder.or_ b x en))
              None ru.Lang.actions
          in
          match any_enabled with
          | None -> g
          | Some e -> Builder.and_ b g e
        else g)
      sched.Sched.rules
  in
  let will_fire = Array.make n (Builder.zero b 1) in
  for i = 0 to n - 1 do
    let blockers = ref [] in
    for j = 0 to i - 1 do
      if sched.Sched.conflict.(i).(j) then blockers := will_fire.(j) :: !blockers
    done;
    let blocked =
      List.fold_left
        (fun acc w ->
          match acc with None -> Some w | Some x -> Some (Builder.or_ b x w))
        None !blockers
    in
    will_fire.(i) <-
      (match blocked with
      | None -> can_fire.(i)
      | Some x -> Builder.and_ b can_fire.(i) (Builder.not_ b x));
    ignore
      (Builder.name b will_fire.(i)
         ("WILL_FIRE_" ^ sched.Sched.rules.(i).Lang.rule_name))
  done;
  (* Register write networks. *)
  List.iter
    (fun (r : Lang.reg) ->
      let writers = ref [] in
      Array.iteri
        (fun i (ru : Lang.rule) ->
          List.iter
            (fun (a : Lang.action) ->
              if a.Lang.target.Lang.rid = r.Lang.rid then
                let en =
                  match a.Lang.when_ with
                  | None -> will_fire.(i)
                  | Some w -> Builder.and_ b will_fire.(i) (expr w)
                in
                writers := (en, expr a.Lang.value) :: !writers)
            ru.Lang.actions)
        sched.Sched.rules;
      let writers = List.rev !writers in
      match writers with
      | [] -> Builder.connect b (reg_sig r.Lang.rid) (reg_sig r.Lang.rid)
      | _ ->
          let q = reg_sig r.Lang.rid in
          let data =
            match options.Options.mux_style with
            | Options.Priority ->
                List.fold_left
                  (fun acc (en, v) -> Builder.mux b en v acc)
                  q (List.rev writers)
            | Options.One_hot when List.length writers = 1 ->
                (* A single writer is a plain load-enable mux either way. *)
                let en, v = List.hd writers in
                Builder.mux b en v q
            | Options.One_hot ->
                (* AND-OR network: writers are mutually exclusive by
                   construction (conflicting rules never co-fire). *)
                let any_en =
                  List.fold_left
                    (fun acc (en, _) -> Builder.or_ b acc en)
                    (Builder.zero b 1) writers
                in
                let masked (en, v) =
                  Builder.and_ b (Builder.sext b en r.Lang.rwidth) v
                in
                List.fold_left
                  (fun acc w -> Builder.or_ b acc (masked w))
                  (Builder.and_ b
                     (Builder.sext b (Builder.not_ b any_en) r.Lang.rwidth)
                     q)
                  writers
          in
          Builder.connect b q data)
    m.Lang.regs;
  List.iter (fun (name, e) -> Builder.output b name (expr e)) m.Lang.outputs;
  (Builder.finalize b, sched)

let compile ?options m = fst (compile_with_schedule ?options m)
