(** Compilation of rule modules to {!Hw.Netlist} circuits.

    For each rule the compiler materializes

    - [CAN_FIRE]  — the guard (with action conditions folded in under
      [-aggressive-conditions]);
    - [WILL_FIRE] — [CAN_FIRE] minus every higher-urgency conflicting rule
      that fires;

    and for each register a write network selecting among the firing
    writers (priority chain or one-hot, per {!Options.mux_style}).
    Module inputs/outputs become circuit ports. *)

val compile : ?options:Options.t -> Lang.modul -> Hw.Netlist.t

val compile_with_schedule :
  ?options:Options.t -> Lang.modul -> Hw.Netlist.t * Sched.t
