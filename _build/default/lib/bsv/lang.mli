(** A rule-based hardware description language (the repository's Bluespec
    SystemVerilog stand-in).

    A module is a set of registers plus {e guarded atomic rules}: each rule
    has a boolean guard and a set of conditional register updates.  The
    reference semantics ({!Semantics}) executes one rule at a time; the
    compiler ({!Compile}) schedules several compatible rules per clock
    cycle, like the Bluespec Compiler.

    Expressions are signed-agnostic bit vectors; widths are explicit and
    checked by {!infer_width}. *)

type expr =
  | Const of Hw.Bits.t
  | Read of reg
  | In of string * int            (** module input port *)
  | Unop of Hw.Netlist.unop * expr
  | Binop of Hw.Netlist.binop * expr * expr
  | Mux of expr * expr * expr
  | Slice of expr * int * int
  | Uext of expr * int
  | Sext of expr * int

and reg = { rid : int; rname : string; rwidth : int; rinit : int }

type action = {
  target : reg;
  when_ : expr option;            (** extra enable, beyond the rule guard *)
  value : expr;
}

type rule = { rule_name : string; guard : expr; actions : action list }

type modul = {
  mod_name : string;
  inputs : (string * int) list;
  regs : reg list;
  rules : rule list;              (** in descending urgency order *)
  outputs : (string * expr) list;
}

val infer_width : expr -> int
(** @raise Failure on operand width mismatches (the language's type
    check). *)

val validate : modul -> unit
(** Checks widths of every rule, action and output, uniqueness of register
    ids and rule names, and that no rule writes one register twice (a rule
    is an atomic action). *)

val read_set : rule -> int list
(** Ids of registers the rule's guard, conditions or values read. *)

val write_set : rule -> int list
(** Ids of registers the rule may write. *)

(** {1 Construction helpers} *)

type builder

val builder : string -> builder
val mk_reg : builder -> ?init:int -> string -> int -> reg
val mk_input : builder -> string -> int -> expr
val mk_rule : builder -> string -> guard:expr -> action list -> unit
val mk_output : builder -> string -> expr -> unit
val mk_module : builder -> modul
(** Runs {!validate}. *)

(** {1 Expression sugar} — width-checked smart constructors. *)

val cst : int -> int -> expr
(** [cst width v]. *)

val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val not_ : expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( +: ) : expr -> expr -> expr
(** Same-width wrap-around addition (BSV semantics). *)

val ( -: ) : expr -> expr -> expr
val assign : ?when_:expr -> reg -> expr -> action
