(** The IDCT benchmark written as rule modules.

    [initial_design] is the manual translation of the reference C program:
    collect a matrix, one rule performs all eight row passes, one rule all
    eight column passes, then drain — stages overlap only through
    full/busy flags.

    [optimized_design] is the macro-pipelined organization (one row unit
    applied per beat, one column unit per cycle, ping-pong banks tracked by
    produced/consumed counters).  Each 8-beat phase needs a ninth cycle for
    its commit rule — the commit conflicts with the per-beat rule on the
    phase counter — which reproduces the one-cycle scheduling "bubble" the
    paper reports for BSC (periodicity 9 instead of 8). *)

val initial_design : Lang.modul
val optimized_design : Lang.modul

val circuit : ?options:Options.t -> Lang.modul -> Hw.Netlist.t
(** Compile to a netlist with AXI-Stream ports. *)
