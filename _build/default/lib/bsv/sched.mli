(** Static rule scheduling (the compiler's conflict analysis).

    Two rules may fire in the same clock cycle only if the parallel
    execution (all reads see the cycle-start state, all writes land at the
    cycle end) is equivalent to {e some} sequential order of the two — the
    one-rule-at-a-time semantics BSV programs are written against.  That
    fails when they write a common register, or when each reads a register
    the other writes; chains of one-way read/write dependences across three
    or more rules are also rejected (a precedence cycle has no sequential
    witness).

    With [effort >= 2], write-write conflicts between rules whose guards
    are syntactically disjoint (equality tests of one register against
    different constants) are discharged — they can never fire together. *)

type t = {
  rules : Lang.rule array;          (** in urgency order *)
  conflict : bool array array;      (** symmetric conflict matrix *)
  precede : bool array array;
      (** [precede.(i).(j)]: when both fire, rule [i] must precede rule [j]
          in the sequential witness (i reads what j writes) *)
}

val analyze : ?options:Options.t -> Lang.modul -> t

val guards_disjoint : Lang.rule -> Lang.rule -> bool
(** Syntactic disjointness: both guards contain [Eq (Read r, Const k)]
    conjuncts for the same register with different constants. *)

val serial_witness : t -> fired:int list -> int list option
(** A sequential order of the fired rule indices consistent with
    [precede], or [None] if (unexpectedly) cyclic. *)
