lib/bsv/sched.ml: Array Hw Lang List Options
