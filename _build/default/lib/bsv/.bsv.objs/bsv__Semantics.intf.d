lib/bsv/semantics.mli: Hw Lang Sched
