lib/bsv/compile.ml: Array Builder Hashtbl Hw Lang List Netlist Options Sched
