lib/bsv/idct_bsv.ml: Array Axis Compile Hw Idct Lang List Printf
