lib/bsv/idct_bsv.mli: Hw Lang Options
