lib/bsv/sched.mli: Lang Options
