lib/bsv/options.ml: List Printf
