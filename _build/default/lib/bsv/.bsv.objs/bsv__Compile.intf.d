lib/bsv/compile.mli: Hw Lang Options Sched
