lib/bsv/lang.ml: Hashtbl Hw Int List Printf
