lib/bsv/emit.ml: Buffer Hw Lang List Printf String
