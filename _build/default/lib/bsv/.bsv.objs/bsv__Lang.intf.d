lib/bsv/lang.mli: Hw
