lib/bsv/semantics.ml: Array Bits Hw Lang List Netlist Printf Sched
