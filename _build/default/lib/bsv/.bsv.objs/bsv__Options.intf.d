lib/bsv/options.mli:
