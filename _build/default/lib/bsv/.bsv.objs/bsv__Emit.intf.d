lib/bsv/emit.mli: Lang
