(** Compiler option space (the BSC command-line/attribute knobs the paper
    sweeps — 26 synthesized circuits whose characteristics barely move).

    - [urgency]: rule urgency from declaration order, or reversed
      (BSC's [-scheduler-effort]/urgency attributes);
    - [mux_style]: register write-data selection as a priority chain or a
      one-hot AND-OR network;
    - [aggressive_conditions]: fold action conditions into rule
      CAN_FIREs (BSC's [-aggressive-conditions]);
    - [effort]: scheduler precision — [0] pairwise analysis only,
      [1] adds precedence-cycle refinement, [2] adds guard-disjointness
      pruning of write-write conflicts. *)

type urgency = Declared | Reversed
type mux_style = Priority | One_hot

type t = {
  urgency : urgency;
  mux_style : mux_style;
  aggressive_conditions : bool;
  effort : int;
}

val default : t
(** Declared order, priority muxes, no aggressive conditions, effort 2. *)

val all : t list
(** The full 24-point grid (2 x 2 x 2 x 3). *)

val describe : t -> string
