open Hw

type state = { regs : Bits.t array; inputs : (string * Bits.t) list }

let initial_state (m : Lang.modul) =
  let n = List.fold_left (fun acc r -> max acc (r.Lang.rid + 1)) 0 m.Lang.regs in
  let regs = Array.make n (Bits.zero 1) in
  List.iter
    (fun (r : Lang.reg) ->
      regs.(r.Lang.rid) <- Bits.create ~width:r.Lang.rwidth r.Lang.rinit)
    m.Lang.regs;
  let inputs = List.map (fun (nm, w) -> (nm, Bits.zero w)) m.Lang.inputs in
  { regs; inputs }

let with_inputs st values =
  {
    st with
    inputs =
      List.map
        (fun (nm, old) ->
          match List.assoc_opt nm values with
          | Some v -> (nm, Bits.create ~width:(Bits.width old) v)
          | None -> (nm, old))
        st.inputs;
  }

let rec eval st (e : Lang.expr) =
  match e with
  | Lang.Const k -> k
  | Lang.Read r -> st.regs.(r.Lang.rid)
  | Lang.In (name, _) -> List.assoc name st.inputs
  | Lang.Unop (Netlist.Not, x) -> Bits.lognot (eval st x)
  | Lang.Unop (Netlist.Neg, x) -> Bits.neg (eval st x)
  | Lang.Binop (op, x, y) -> (
      let a = eval st x and bv = eval st y in
      match op with
      | Netlist.Add -> Bits.add a bv
      | Netlist.Sub -> Bits.sub a bv
      | Netlist.Mul -> Bits.mul a bv
      | Netlist.And -> Bits.logand a bv
      | Netlist.Or -> Bits.logor a bv
      | Netlist.Xor -> Bits.logxor a bv
      | Netlist.Shl -> Bits.shift_left a bv
      | Netlist.Shr -> Bits.shift_right_logical a bv
      | Netlist.Sra -> Bits.shift_right_arith a bv
      | Netlist.Eq -> Bits.eq a bv
      | Netlist.Ne -> Bits.ne a bv
      | Netlist.Lt s -> Bits.lt ~signed:(s = Netlist.Signed) a bv
      | Netlist.Le s -> Bits.le ~signed:(s = Netlist.Signed) a bv)
  | Lang.Mux (s, x, y) ->
      if Bits.to_int (eval st s) = 1 then eval st x else eval st y
  | Lang.Slice (x, hi, lo) -> Bits.slice (eval st x) ~hi ~lo
  | Lang.Uext (x, w) -> Bits.uext (eval st x) w
  | Lang.Sext (x, w) -> Bits.sext (eval st x) w

let rule_enabled st (ru : Lang.rule) = Bits.to_int (eval st ru.Lang.guard) = 1

let apply_rule st (ru : Lang.rule) =
  let updates =
    List.filter_map
      (fun (a : Lang.action) ->
        let enabled =
          match a.Lang.when_ with
          | None -> true
          | Some w -> Bits.to_int (eval st w) = 1
        in
        if enabled then Some (a.Lang.target.Lang.rid, eval st a.Lang.value)
        else None)
      ru.Lang.actions
  in
  let regs = Array.copy st.regs in
  List.iter (fun (rid, v) -> regs.(rid) <- v) updates;
  { st with regs }

let step_one st (m : Lang.modul) =
  match List.find_opt (rule_enabled st) m.Lang.rules with
  | Some ru -> Some (apply_rule st ru)
  | None -> None

let fired_set st (sched : Sched.t) =
  let n = Array.length sched.Sched.rules in
  let fired = ref [] in
  for i = 0 to n - 1 do
    if rule_enabled st sched.Sched.rules.(i) then
      let blocked =
        List.exists (fun j -> sched.Sched.conflict.(i).(j)) !fired
      in
      if not blocked then fired := i :: !fired
  done;
  List.rev !fired

let step_parallel st (sched : Sched.t) =
  let fired = fired_set st sched in
  let regs = Array.copy st.regs in
  List.iter
    (fun i ->
      let ru = sched.Sched.rules.(i) in
      List.iter
        (fun (a : Lang.action) ->
          let enabled =
            match a.Lang.when_ with
            | None -> true
            | Some w -> Bits.to_int (eval st w) = 1
          in
          if enabled then regs.(a.Lang.target.Lang.rid) <- eval st a.Lang.value)
        ru.Lang.actions)
    fired;
  { st with regs }

let serializable_step st (sched : Sched.t) =
  let fired = fired_set st sched in
  let parallel = step_parallel st sched in
  match Sched.serial_witness sched ~fired with
  | None -> Error "no sequential witness for the fired set"
  | Some order ->
      let sequential =
        List.fold_left
          (fun acc i ->
            let ru = sched.Sched.rules.(i) in
            if not (rule_enabled acc ru) then acc else apply_rule acc ru)
          st order
      in
      if sequential.regs = parallel.regs then Ok parallel
      else
        let offending =
          let rec find i =
            if i >= Array.length parallel.regs then "?"
            else if not (Bits.equal parallel.regs.(i) sequential.regs.(i)) then
              string_of_int i
            else find (i + 1)
          in
          find 0
        in
        Error
          (Printf.sprintf
             "parallel and sequential execution disagree on register %s"
             offending)

let outputs st (m : Lang.modul) =
  List.map (fun (nm, e) -> (nm, eval st e)) m.Lang.outputs
