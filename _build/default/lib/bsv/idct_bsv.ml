open Lang

(* ------------------------------------------------------------------ *)
(* Chen-Wang datapath in expression form (32-bit arithmetic, like the
   C original the paper's BSV design was translated from).            *)
(* ------------------------------------------------------------------ *)

let aw = 32
let c32 v = cst aw v
let sx e = if infer_width e >= aw then e else Sext (e, aw)
let add a b = Binop (Hw.Netlist.Add, sx a, sx b)
let sub a b = Binop (Hw.Netlist.Sub, sx a, sx b)
let mulc k x = Binop (Hw.Netlist.Mul, c32 k, sx x)
let shl x n = Binop (Hw.Netlist.Shl, sx x, cst 6 n)
let asr_ x n = Binop (Hw.Netlist.Sra, sx x, cst 6 n)

let iclip x =
  let x = sx x in
  let lo = c32 (-256) and hi = c32 255 in
  let too_lo = Binop (Hw.Netlist.Lt Hw.Netlist.Signed, x, lo) in
  let too_hi = Binop (Hw.Netlist.Lt Hw.Netlist.Signed, hi, x) in
  Slice (Mux (too_lo, lo, Mux (too_hi, hi, x)), 8, 0)

let w1 = Idct.Chenwang.w1
let w2 = Idct.Chenwang.w2
let w3 = Idct.Chenwang.w3
let w5 = Idct.Chenwang.w5
let w6 = Idct.Chenwang.w6
let w7 = Idct.Chenwang.w7

let row_pass ins =
  let x0 = add (shl ins.(0) 11) (c32 128) in
  let x1 = shl ins.(4) 11 in
  let x2 = sx ins.(6) and x3 = sx ins.(2) and x4 = sx ins.(1) in
  let x5 = sx ins.(7) and x6 = sx ins.(5) and x7 = sx ins.(3) in
  let x8 = mulc w7 (add x4 x5) in
  let x4 = add x8 (mulc (w1 - w7) x4) in
  let x5 = sub x8 (mulc (w1 + w7) x5) in
  let x8 = mulc w3 (add x6 x7) in
  let x6 = sub x8 (mulc (w3 - w5) x6) in
  let x7 = sub x8 (mulc (w3 + w5) x7) in
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = mulc w6 (add x3 x2) in
  let x2 = sub x1 (mulc (w2 + w6) x2) in
  let x3 = add x1 (mulc (w2 - w6) x3) in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (c32 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (c32 128)) 8 in
  (* Row results are stored in 16 bits (the C original's short). *)
  let store e = Slice (e, 15, 0) in
  [|
    store (asr_ (add x7 x1) 8);
    store (asr_ (add x3 x2) 8);
    store (asr_ (add x0 x4) 8);
    store (asr_ (add x8 x6) 8);
    store (asr_ (sub x8 x6) 8);
    store (asr_ (sub x0 x4) 8);
    store (asr_ (sub x3 x2) 8);
    store (asr_ (sub x7 x1) 8);
  |]

let col_pass ins =
  let x0 = add (shl ins.(0) 8) (c32 8192) in
  let x1 = shl ins.(4) 8 in
  let x2 = sx ins.(6) and x3 = sx ins.(2) and x4 = sx ins.(1) in
  let x5 = sx ins.(7) and x6 = sx ins.(5) and x7 = sx ins.(3) in
  let x8 = add (mulc w7 (add x4 x5)) (c32 4) in
  let x4 = asr_ (add x8 (mulc (w1 - w7) x4)) 3 in
  let x5 = asr_ (sub x8 (mulc (w1 + w7) x5)) 3 in
  let x8 = add (mulc w3 (add x6 x7)) (c32 4) in
  let x6 = asr_ (sub x8 (mulc (w3 - w5) x6)) 3 in
  let x7 = asr_ (sub x8 (mulc (w3 + w5) x7)) 3 in
  let x8 = add x0 x1 in
  let x0 = sub x0 x1 in
  let x1 = add (mulc w6 (add x3 x2)) (c32 4) in
  let x2 = asr_ (sub x1 (mulc (w2 + w6) x2)) 3 in
  let x3 = asr_ (add x1 (mulc (w2 - w6) x3)) 3 in
  let x1 = add x4 x6 in
  let x4 = sub x4 x6 in
  let x6 = add x5 x7 in
  let x5 = sub x5 x7 in
  let x7 = add x8 x3 in
  let x8 = sub x8 x3 in
  let x3 = add x0 x2 in
  let x0 = sub x0 x2 in
  let x2 = asr_ (add (mulc 181 (add x4 x5)) (c32 128)) 8 in
  let x4 = asr_ (add (mulc 181 (sub x4 x5)) (c32 128)) 8 in
  [|
    iclip (asr_ (add x7 x1) 14);
    iclip (asr_ (add x3 x2) 14);
    iclip (asr_ (add x0 x4) 14);
    iclip (asr_ (add x8 x6) 14);
    iclip (asr_ (sub x8 x6) 14);
    iclip (asr_ (sub x0 x4) 14);
    iclip (asr_ (sub x3 x2) 14);
    iclip (asr_ (sub x7 x1) 14);
  |]

(* ------------------------------------------------------------------ *)
(* Common AXI-Stream plumbing                                          *)
(* ------------------------------------------------------------------ *)

let lanes = Axis.Stream.lanes
let in_w = Axis.Stream.in_width
let out_w = Axis.Stream.out_width
let mid_w = 16

let declare_stream_inputs bld =
  let s_valid = mk_input bld Axis.Stream.s_valid 1 in
  let _s_last = mk_input bld Axis.Stream.s_last 1 in
  let s_data = Array.init lanes (fun i -> mk_input bld (Axis.Stream.s_data i) in_w) in
  let m_ready = mk_input bld Axis.Stream.m_ready 1 in
  (s_valid, s_data, m_ready)

(* An 8:1 selection expression over a register matrix. *)
let select_row regs sel r_of_i =
  Array.init lanes (fun c ->
      let rec pick i =
        if i = lanes - 1 then Read regs.(r_of_i i).(c)
        else
          Mux
            (Binop (Hw.Netlist.Eq, sel, cst 3 i),
             Read regs.(r_of_i i).(c),
             pick (i + 1))
      in
      pick 0)

(* ------------------------------------------------------------------ *)
(* Initial design: direct translation of the C program                 *)
(* ------------------------------------------------------------------ *)

let initial_design =
  let bld = builder "bsv_idct_initial" in
  let s_valid, s_data, m_ready = declare_stream_inputs bld in
  let matrix name w =
    Array.init lanes (fun r ->
        Array.init lanes (fun c ->
            mk_reg bld (Printf.sprintf "%s_%d_%d" name r c) w))
  in
  let inb = matrix "inb" in_w in
  let mid = matrix "mid" mid_w in
  let outb = matrix "outb" out_w in
  let ld_cnt = mk_reg bld "ld_cnt" 3 in
  let ld_done = mk_reg bld "ld_done" 1 in
  let mid_full = mk_reg bld "mid_full" 1 in
  let out_busy = mk_reg bld "out_busy" 1 in
  let ocnt = mk_reg bld "ocnt" 3 in
  let r e = Read e in

  (* Collect one row per beat. *)
  let load_guard = s_valid &&: not_ (r ld_done) in
  let load_actions =
    List.concat
      (List.init lanes (fun row ->
           List.init lanes (fun c ->
               assign
                 ~when_:(r ld_cnt ==: cst 3 row)
                 inb.(row).(c) s_data.(c))))
    @ [
        assign ld_cnt (r ld_cnt +: cst 3 1);
        assign ~when_:(r ld_cnt ==: cst 3 (lanes - 1)) ld_done (cst 1 1);
      ]
  in
  mk_rule bld "load" ~guard:load_guard load_actions;

  (* All eight row passes at once (the unrolled C loop). *)
  let rows_guard = r ld_done &&: not_ (r mid_full) in
  let rows_actions =
    List.concat
      (List.init lanes (fun row ->
           let res = row_pass (Array.map (fun e -> Read e) inb.(row)) in
           List.init lanes (fun c -> assign mid.(row).(c) res.(c))))
    @ [ assign mid_full (cst 1 1); assign ld_done (cst 1 0);
        assign ld_cnt (cst 3 0) ]
  in
  mk_rule bld "row_passes" ~guard:rows_guard rows_actions;

  (* All eight column passes at once. *)
  let cols_guard = r mid_full &&: not_ (r out_busy) in
  let cols_actions =
    List.concat
      (List.init lanes (fun col ->
           let res =
             col_pass (Array.init lanes (fun row -> Read mid.(row).(col)))
           in
           List.init lanes (fun row -> assign outb.(row).(col) res.(row))))
    @ [ assign out_busy (cst 1 1); assign mid_full (cst 1 0) ]
  in
  mk_rule bld "col_passes" ~guard:cols_guard cols_actions;

  (* Drain one row per beat. *)
  let drain_guard = r out_busy &&: m_ready in
  let drain_actions =
    [
      assign ocnt (r ocnt +: cst 3 1);
      assign ~when_:(r ocnt ==: cst 3 (lanes - 1)) out_busy (cst 1 0);
    ]
  in
  mk_rule bld "drain" ~guard:drain_guard drain_actions;

  mk_output bld Axis.Stream.s_ready (not_ (r ld_done));
  mk_output bld Axis.Stream.m_valid (r out_busy);
  mk_output bld Axis.Stream.m_last (r out_busy &&: (r ocnt ==: cst 3 (lanes - 1)));
  let out_row = select_row outb (r ocnt) (fun i -> i) in
  Array.iteri
    (fun c e -> mk_output bld (Axis.Stream.m_data c) e)
    out_row;
  mk_module bld

(* ------------------------------------------------------------------ *)
(* Optimized design: macro-pipeline with produced/consumed counters    *)
(* ------------------------------------------------------------------ *)

let optimized_design =
  let bld = builder "bsv_idct_opt" in
  let s_valid, s_data, m_ready = declare_stream_inputs bld in
  let bank_matrix name w =
    Array.init 2 (fun k ->
        Array.init lanes (fun r ->
            Array.init lanes (fun c ->
                mk_reg bld (Printf.sprintf "%s%d_%d_%d" name k r c) w)))
  in
  let mid = bank_matrix "mid" mid_w in
  let outb = bank_matrix "out" out_w in
  let fcnt = mk_reg bld "fcnt" 4 in
  let ccnt = mk_reg bld "ccnt" 4 in
  let dcnt = mk_reg bld "dcnt" 4 in
  let p1 = mk_reg bld "p1" 2 in
  let p2 = mk_reg bld "p2" 2 in
  let p3 = mk_reg bld "p3" 2 in
  let r e = Read e in
  let occ a b = r a -: r b in
  let bank_of p = Slice (Read p, 0, 0) in
  let cnt3 c = Slice (Read c, 2, 0) in

  (* Stage 1: row pass on the arriving beat, into mid[p1 mod 2]. *)
  let row_res = row_pass s_data in
  let load_guard =
    s_valid
    &&: Binop (Hw.Netlist.Le Hw.Netlist.Unsigned, r fcnt, cst 4 7)
    &&: (occ p1 p2 <>: cst 2 2)
  in
  let load_actions =
    List.concat
      (List.init 2 (fun k ->
           List.concat
             (List.init lanes (fun row ->
                  List.init lanes (fun c ->
                      assign
                        ~when_:
                          ((cnt3 fcnt ==: cst 3 row)
                          &&: (bank_of p1 ==: cst 1 k))
                        mid.(k).(row).(c) row_res.(c))))))
    @ [ assign fcnt (r fcnt +: cst 4 1) ]
  in
  mk_rule bld "load" ~guard:load_guard load_actions;
  mk_rule bld "load_commit"
    ~guard:(r fcnt ==: cst 4 8)
    [ assign fcnt (cst 4 0); assign p1 (r p1 +: cst 2 1) ];

  (* Stage 2: one column pass per cycle over mid[p2 mod 2].  A single
     column unit is fed through bank/column selection muxes. *)
  let mid_col =
    Array.init lanes (fun row ->
        let pick k =
          let rec go col =
            if col = lanes - 1 then Read mid.(k).(row).(col)
            else
              Mux
                (cnt3 ccnt ==: cst 3 col, Read mid.(k).(row).(col), go (col + 1))
          in
          go 0
        in
        Mux (bank_of p2, pick 1, pick 0))
  in
  let col_res = col_pass mid_col in
  let colpass_guard =
    Binop (Hw.Netlist.Le Hw.Netlist.Unsigned, r ccnt, cst 4 7)
    &&: (occ p1 p2 <>: cst 2 0)
    &&: (occ p2 p3 <>: cst 2 2)
  in
  let colpass_actions =
    List.concat
      (List.init 2 (fun k ->
           List.concat
             (List.init lanes (fun col ->
                  List.init lanes (fun row ->
                      assign
                        ~when_:
                          ((cnt3 ccnt ==: cst 3 col)
                          &&: (bank_of p2 ==: cst 1 k))
                        outb.(k).(row).(col) col_res.(row))))))
    @ [ assign ccnt (r ccnt +: cst 4 1) ]
  in
  mk_rule bld "col_pass" ~guard:colpass_guard colpass_actions;
  mk_rule bld "col_commit"
    ~guard:(r ccnt ==: cst 4 8)
    [ assign ccnt (cst 4 0); assign p2 (r p2 +: cst 2 1) ];

  (* Stage 3: drain one row per beat from out[p3 mod 2]. *)
  let drain_guard =
    Binop (Hw.Netlist.Le Hw.Netlist.Unsigned, r dcnt, cst 4 7)
    &&: (occ p2 p3 <>: cst 2 0)
    &&: m_ready
  in
  mk_rule bld "drain" ~guard:drain_guard
    [ assign dcnt (r dcnt +: cst 4 1) ];
  mk_rule bld "drain_commit"
    ~guard:(r dcnt ==: cst 4 8)
    [ assign dcnt (cst 4 0); assign p3 (r p3 +: cst 2 1) ];

  mk_output bld Axis.Stream.s_ready
    (Binop (Hw.Netlist.Le Hw.Netlist.Unsigned, r fcnt, cst 4 7)
    &&: (occ p1 p2 <>: cst 2 2));
  let m_valid_e =
    Binop (Hw.Netlist.Le Hw.Netlist.Unsigned, r dcnt, cst 4 7)
    &&: (occ p2 p3 <>: cst 2 0)
  in
  mk_output bld Axis.Stream.m_valid m_valid_e;
  mk_output bld Axis.Stream.m_last (m_valid_e &&: (cnt3 dcnt ==: cst 3 7));
  Array.iteri
    (fun c e -> mk_output bld (Axis.Stream.m_data c) e)
    (Array.init lanes (fun c ->
         Mux
           ( bank_of p3,
             (let sel = cnt3 dcnt in
              let rec pick i =
                if i = lanes - 1 then Read outb.(1).(i).(c)
                else
                  Mux
                    (Binop (Hw.Netlist.Eq, sel, cst 3 i),
                     Read outb.(1).(i).(c),
                     pick (i + 1))
              in
              pick 0),
             let sel = cnt3 dcnt in
             let rec pick i =
               if i = lanes - 1 then Read outb.(0).(i).(c)
               else
                 Mux
                   (Binop (Hw.Netlist.Eq, sel, cst 3 i),
                    Read outb.(0).(i).(c),
                    pick (i + 1))
             in
             pick 0 )));
  mk_module bld

let circuit ?options m = Compile.compile ?options m
