let binop_sym (op : Hw.Netlist.binop) =
  match op with
  | Hw.Netlist.Add -> "+"
  | Hw.Netlist.Sub -> "-"
  | Hw.Netlist.Mul -> "*"
  | Hw.Netlist.And -> "&"
  | Hw.Netlist.Or -> "|"
  | Hw.Netlist.Xor -> "^"
  | Hw.Netlist.Shl -> "<<"
  | Hw.Netlist.Shr -> ">>"
  | Hw.Netlist.Sra -> ">>>"
  | Hw.Netlist.Eq -> "=="
  | Hw.Netlist.Ne -> "!="
  | Hw.Netlist.Lt _ -> "<"
  | Hw.Netlist.Le _ -> "<="

let rec expr_to_string (e : Lang.expr) =
  match e with
  | Lang.Const k ->
      Printf.sprintf "%d'd%d" (Hw.Bits.width k) (Hw.Bits.to_int k)
  | Lang.Read r -> r.Lang.rname
  | Lang.In (name, _) -> name
  | Lang.Unop (Hw.Netlist.Not, x) -> Printf.sprintf "~%s" (atom x)
  | Lang.Unop (Hw.Netlist.Neg, x) -> Printf.sprintf "-%s" (atom x)
  | Lang.Binop (op, x, y) ->
      Printf.sprintf "%s %s %s" (atom x) (binop_sym op) (atom y)
  | Lang.Mux (s, x, y) ->
      Printf.sprintf "%s ? %s : %s" (atom s) (atom x) (atom y)
  | Lang.Slice (x, hi, lo) -> Printf.sprintf "%s[%d:%d]" (atom x) hi lo
  | Lang.Uext (x, w) -> Printf.sprintf "zeroExtend%d(%s)" w (expr_to_string x)
  | Lang.Sext (x, w) -> Printf.sprintf "signExtend%d(%s)" w (expr_to_string x)

and atom e =
  match e with
  | Lang.Const _ | Lang.Read _ | Lang.In _ | Lang.Slice _ | Lang.Uext _
  | Lang.Sext _ ->
      expr_to_string e
  | Lang.Unop _ | Lang.Binop _ | Lang.Mux _ ->
      "(" ^ expr_to_string e ^ ")"

let emit (m : Lang.modul) =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "interface %s_Ifc;\n" (String.capitalize_ascii m.Lang.mod_name);
  List.iter
    (fun (nm, w) -> pr "  method Action %s(Bit#(%d) x);\n" nm w)
    m.Lang.inputs;
  List.iter
    (fun (nm, e) ->
      pr "  method Bit#(%d) %s();\n" (Lang.infer_width e) nm)
    m.Lang.outputs;
  pr "endinterface\n";
  pr "\n";
  pr "module mk%s (%s_Ifc);\n"
    (String.capitalize_ascii m.Lang.mod_name)
    (String.capitalize_ascii m.Lang.mod_name);
  List.iter
    (fun (r : Lang.reg) ->
      pr "  Reg#(Bit#(%d)) %s <- mkReg(%d);\n" r.Lang.rwidth r.Lang.rname
        r.Lang.rinit)
    m.Lang.regs;
  List.iter
    (fun (ru : Lang.rule) ->
      pr "\n";
      pr "  rule %s (%s);\n" ru.Lang.rule_name (expr_to_string ru.Lang.guard);
      List.iter
        (fun (a : Lang.action) ->
          match a.Lang.when_ with
          | None ->
              pr "    %s <= %s;\n" a.Lang.target.Lang.rname
                (expr_to_string a.Lang.value)
          | Some w ->
              pr "    if (%s) %s <= %s;\n" (expr_to_string w)
                a.Lang.target.Lang.rname
                (expr_to_string a.Lang.value))
        ru.Lang.actions;
      pr "  endrule\n")
    m.Lang.rules;
  List.iter
    (fun (nm, e) ->
      pr "\n  method Bit#(%d) %s();\n" (Lang.infer_width e) nm;
      pr "    return %s;\n" (expr_to_string e);
      pr "  endmethod\n")
    m.Lang.outputs;
  pr "endmodule\n";
  Buffer.contents buf
