(** Reference semantics for rule modules.

    [step_one] implements the language's defining one-rule-at-a-time
    semantics; [step_parallel] mirrors what the compiled hardware does in a
    clock cycle (fire every scheduled rule against the cycle-start state).
    {!serializable_step} checks the compiler's soundness claim on a given
    state: the parallel step must equal executing the fired rules
    sequentially in a {!Sched.serial_witness} order. *)

type state = {
  regs : Hw.Bits.t array;           (** indexed by register id *)
  inputs : (string * Hw.Bits.t) list;
}

val initial_state : Lang.modul -> state
val with_inputs : state -> (string * int) list -> state
(** Values are masked to the declared port widths (unknown names fail). *)

val eval : state -> Lang.expr -> Hw.Bits.t
val rule_enabled : state -> Lang.rule -> bool
val apply_rule : state -> Lang.rule -> state
(** Executes the actions atomically (all reads before all writes). *)

val step_one : state -> Lang.modul -> state option
(** Fires the first enabled rule in declaration order, or [None]. *)

val fired_set : state -> Sched.t -> int list
(** Rule indices the static schedule fires from this state (urgency order,
    conflicts resolved). *)

val step_parallel : state -> Sched.t -> state
(** One compiled clock cycle. *)

val serializable_step : state -> Sched.t -> (state, string) result
(** Runs {!step_parallel} and checks it against the sequential witness;
    [Error] describes the first mismatch. *)

val outputs : state -> Lang.modul -> (string * Hw.Bits.t) list
