(** BSV-style source listing of a rule module.

    The listing is generated mechanically from the same AST the compiler
    consumes, so the line counts used by the paper-reproduction metrics
    refer to exactly the designs being synthesized. *)

val expr_to_string : Lang.expr -> string
val emit : Lang.modul -> string
