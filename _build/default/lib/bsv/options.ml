type urgency = Declared | Reversed
type mux_style = Priority | One_hot

type t = {
  urgency : urgency;
  mux_style : mux_style;
  aggressive_conditions : bool;
  effort : int;
}

let default =
  { urgency = Declared; mux_style = Priority; aggressive_conditions = false; effort = 2 }

let all =
  List.concat_map
    (fun urgency ->
      List.concat_map
        (fun mux_style ->
          List.concat_map
            (fun aggressive_conditions ->
              List.map
                (fun effort ->
                  { urgency; mux_style; aggressive_conditions; effort })
                [ 0; 1; 2 ])
            [ false; true ])
        [ Priority; One_hot ])
    [ Declared; Reversed ]

let describe t =
  Printf.sprintf "urgency=%s mux=%s aggressive=%b effort=%d"
    (match t.urgency with Declared -> "declared" | Reversed -> "reversed")
    (match t.mux_style with Priority -> "priority" | One_hot -> "one-hot")
    t.aggressive_conditions t.effort
