type t = {
  rules : Lang.rule array;
  conflict : bool array array;
  precede : bool array array;
}

let intersects a b = List.exists (fun x -> List.mem x b) a

(* Collect [reg == const] facts implied by a guard (conjunctions only). *)
let rec guard_facts (e : Lang.expr) =
  match e with
  | Lang.Binop (Hw.Netlist.And, a, b) -> guard_facts a @ guard_facts b
  | Lang.Binop (Hw.Netlist.Eq, Lang.Read r, Lang.Const k)
  | Lang.Binop (Hw.Netlist.Eq, Lang.Const k, Lang.Read r) ->
      [ (r.Lang.rid, k) ]
  | _ -> []

let guards_disjoint (r1 : Lang.rule) (r2 : Lang.rule) =
  let f1 = guard_facts r1.Lang.guard and f2 = guard_facts r2.Lang.guard in
  List.exists
    (fun (rid, k1) ->
      List.exists
        (fun (rid', k2) -> rid = rid' && not (Hw.Bits.equal k1 k2))
        f2)
    f1

let analyze ?(options = Options.default) (m : Lang.modul) =
  let ordered =
    match options.Options.urgency with
    | Options.Declared -> m.Lang.rules
    | Options.Reversed -> List.rev m.Lang.rules
  in
  let rules = Array.of_list ordered in
  let n = Array.length rules in
  let reads = Array.map Lang.read_set rules in
  let writes = Array.map Lang.write_set rules in
  let conflict = Array.make_matrix n n false in
  let precede = Array.make_matrix n n false in
  let disjoint i j = options.Options.effort >= 2 && guards_disjoint rules.(i) rules.(j) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if disjoint i j then ()
      else begin
        let ww = intersects writes.(i) writes.(j) in
        let i_reads_j = intersects reads.(i) writes.(j) in
        let j_reads_i = intersects reads.(j) writes.(i) in
        if ww || (i_reads_j && j_reads_i) then begin
          conflict.(i).(j) <- true;
          conflict.(j).(i) <- true
        end
        else begin
          (* A reader must precede the writer in the sequential witness. *)
          if i_reads_j then precede.(i).(j) <- true;
          if j_reads_i then precede.(j).(i) <- true
        end
      end
    done
  done;
  (* Precedence cycles through three or more mutually compatible rules have
     no sequential witness: break them by marking the lowest-urgency edge
     of each cycle as a conflict.  (Pairs are already acyclic.) *)
  if options.Options.effort >= 1 then begin
    let rec refine () =
      (* Find a cycle among compatible rules via DFS on [precede]. *)
      let color = Array.make n 0 in
      let cycle_edge = ref None in
      let rec dfs u =
        color.(u) <- 1;
        for v = 0 to n - 1 do
          if !cycle_edge = None && precede.(u).(v) && not conflict.(u).(v) then begin
            if color.(v) = 1 then
              (* Cycle: the back edge u -> v closes it; demote that pair to
                 a conflict (urgency arbitration) and re-analyze. *)
              cycle_edge := Some (u, v)
            else if color.(v) = 0 then dfs v
          end
        done;
        color.(u) <- 2
      in
      for u = 0 to n - 1 do
        if color.(u) = 0 && !cycle_edge = None then dfs u
      done;
      match !cycle_edge with
      | Some (a, b) ->
          conflict.(a).(b) <- true;
          conflict.(b).(a) <- true;
          precede.(a).(b) <- false;
          precede.(b).(a) <- false;
          refine ()
      | None -> ()
    in
    refine ()
  end;
  { rules; conflict; precede }

let serial_witness t ~fired =
  let fired = Array.of_list fired in
  let k = Array.length fired in
  let indeg = Array.make k 0 in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if a <> b && t.precede.(fired.(a)).(fired.(b)) then indeg.(b) <- indeg.(b) + 1
    done
  done;
  let out = ref [] in
  let remaining = ref k in
  let done_ = Array.make k false in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    for a = 0 to k - 1 do
      if (not done_.(a)) && indeg.(a) = 0 then begin
        done_.(a) <- true;
        out := fired.(a) :: !out;
        decr remaining;
        progress := true;
        for b = 0 to k - 1 do
          if (not done_.(b)) && t.precede.(fired.(a)).(fired.(b)) then
            indeg.(b) <- indeg.(b) - 1
        done
      end
    done
  done;
  if !remaining = 0 then Some (List.rev !out) else None
