let binop_sym (op : Hw.Netlist.binop) =
  match op with
  | Hw.Netlist.Add -> "+"
  | Hw.Netlist.Sub -> "-"
  | Hw.Netlist.Mul -> "*"
  | Hw.Netlist.And -> "&"
  | Hw.Netlist.Or -> "|"
  | Hw.Netlist.Xor -> "^"
  | Hw.Netlist.Shl -> "<<"
  | Hw.Netlist.Shr -> ">>"
  | Hw.Netlist.Sra -> ">>"
  | Hw.Netlist.Eq -> "=="
  | Hw.Netlist.Ne -> "!="
  | Hw.Netlist.Lt _ -> "<"
  | Hw.Netlist.Le _ -> "<="

let rec ty_str (t : Ir.ty) =
  match t with
  | Ir.Bits w -> Printf.sprintf "s%d" w
  | Ir.Array (elt, n) -> Printf.sprintf "%s[%d]" (ty_str elt) n

let rec expr_str (e : Ir.expr) =
  match e with
  | Ir.Var x -> x
  | Ir.Lit { width; value } -> Printf.sprintf "s%d:%d" width value
  | Ir.Bin (op, a, b) ->
      Printf.sprintf "%s %s %s" (atom a) (binop_sym op) (atom b)
  | Ir.Not a -> "!" ^ atom a
  | Ir.Neg a -> "-" ^ atom a
  | Ir.Cast (a, w, `Signed) -> Printf.sprintf "(%s as s%d)" (expr_str a) w
  | Ir.Cast (a, w, `Unsigned) -> Printf.sprintf "(%s as u%d)" (expr_str a) w
  | Ir.If (c, t, f) ->
      Printf.sprintf "if %s { %s } else { %s }" (expr_str c) (expr_str t)
        (expr_str f)
  | Ir.Index (a, i) -> Printf.sprintf "%s[%s]" (atom a) (expr_str i)
  | Ir.Update (a, i, v) ->
      Printf.sprintf "update(%s, %s, %s)" (expr_str a) (expr_str i)
        (expr_str v)
  | Ir.ArrayLit es ->
      Printf.sprintf "[%s]" (String.concat ", " (List.map expr_str es))
  | Ir.Let _ -> String.concat "\n" (let_lines "  " e)
  | Ir.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Ir.For { var; count; acc; init; body } ->
      Printf.sprintf "for (%s, %s) in u32:0..u32:%d {\n%s\n  }(%s)" var acc
        count
        (String.concat "\n" (let_lines "    " body))
        (expr_str init)

and let_lines indent (e : Ir.expr) =
  match e with
  | Ir.Let (x, v, body) ->
      (Printf.sprintf "%slet %s = %s;" indent x (expr_str v))
      :: let_lines indent body
  | _ -> [ indent ^ expr_str e ]

and atom (e : Ir.expr) =
  match e with
  | Ir.Var _ | Ir.Lit _ | Ir.Index _ | Ir.Call _ | Ir.ArrayLit _ | Ir.Cast _
  | Ir.Update _ ->
      expr_str e
  | Ir.Bin _ | Ir.Not _ | Ir.Neg _ | Ir.If _ | Ir.Let _ | Ir.For _ ->
      "(" ^ expr_str e ^ ")"

let emit_fn (f : Ir.fn) =
  let params =
    String.concat ", "
      (List.map
         (fun (p : Ir.param) -> Printf.sprintf "%s: %s" p.pname (ty_str p.pty))
         f.params)
  in
  Printf.sprintf "fn %s(%s) -> %s {\n%s\n}\n" f.fname params (ty_str f.ret)
    (String.concat "\n" (let_lines "  " f.body))

let emit (p : Ir.program) =
  String.concat "\n" (List.map emit_fn p.fns)
