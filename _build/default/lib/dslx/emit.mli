(** DSLX-style source listing, generated from the same AST the compiler
    elaborates (the LOC metric counts these lines). *)

val emit_fn : Ir.fn -> string
val emit : Ir.program -> string
