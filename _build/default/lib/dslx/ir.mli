(** A dataflow-oriented functional language (the repository's DSLX stand-in,
    the input language of XLS).

    Programs are first-order pure functions over fixed-width bit vectors
    and fixed-size arrays.  Loops are counted folds ({!constructor-For}),
    fully unrolled at elaboration; all widths are explicit (casts included),
    as in DSLX.  The compiler ({!Lower}) elaborates the top function to a
    combinational circuit; {!Hw.Pipeline} then retimes it into the
    requested number of stages — the single knob the paper sweeps for
    XLS. *)

type ty = Bits of int | Array of ty * int

type expr =
  | Var of string
  | Lit of { width : int; value : int }
  | Bin of Hw.Netlist.binop * expr * expr
      (** width-strict, like DSLX; shifts take a constant amount *)
  | Not of expr
  | Neg of expr
  | Cast of expr * int * [ `Signed | `Unsigned ]
      (** [e as sN]/[e as uN]: sign- or zero-extends/truncates *)
  | If of expr * expr * expr
  | Index of expr * expr
      (** array indexing; a non-static index elaborates to a selector *)
  | Update of expr * expr * expr
      (** functional array update; a non-static index becomes write muxes *)
  | ArrayLit of expr list
  | Let of string * expr * expr
  | Call of string * expr list
  | For of { var : string; count : int; acc : string; init : expr; body : expr }
      (** [for (var, acc) in 0..count { body }(init)] — a counted fold *)

type param = { pname : string; pty : ty }
type fn = { fname : string; params : param list; ret : ty; body : expr }
type program = { fns : fn list; top : string }

val find_fn : program -> string -> fn
(** @raise Not_found *)

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit
