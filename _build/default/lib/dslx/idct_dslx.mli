(** The IDCT benchmark in the DSLX-like IR, adapted (as the paper did with
    the XLS example) to 12-bit inputs and 9-bit outputs. *)

val program : Ir.program
(** Functions [row_pass], [col_pass] and top [idct] (64 coefficients in,
    64 samples out). *)

val kernel_circuit : unit -> Hw.Netlist.t
(** Elaborated combinational kernel (ports [m_0..m_63] / [out_0..out_63]). *)

val design : ?stages:int -> name:string -> unit -> Hw.Netlist.t
(** Complete AXI-Stream design.  [stages = 0] (default) is the
    combinational circuit; [stages = n > 0] pipelines the kernel into [n]
    ranks — XLS's one knob, swept for the paper's 19 configurations. *)
