(** Elaboration of {!Ir} programs to combinational circuits.

    The top function's parameters become input ports and its result becomes
    output ports; arrays are flattened element-wise ([name_0], [name_1],
    ...).  Calls are inlined, [For] loops unrolled, loop indices evaluated
    statically; a dynamic array index elaborates to a selection tree and a
    dynamic update to per-element write muxes. *)

val circuit : Ir.program -> Hw.Netlist.t
(** Elaborates [program.top].  @raise Failure on an ill-typed program (run
    {!Typecheck.check_program} first for a proper diagnosis). *)

val interpret : Ir.program -> int list -> int list
(** Software evaluation of the top function on flattened unsigned inputs —
    the language's reference semantics, used to validate elaboration. *)
