lib/dslx/typecheck.mli: Ir
