lib/dslx/typecheck.ml: Format Hw Ir List Printf Result
