lib/dslx/emit.ml: Hw Ir List Printf String
