lib/dslx/lower.mli: Hw Ir
