lib/dslx/idct_dslx.ml: Array Axis Hw Idct Ir List Lower Printf Typecheck
