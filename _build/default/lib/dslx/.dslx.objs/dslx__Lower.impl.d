lib/dslx/lower.ml: Array Bits Builder Hw Ir List Netlist Printf
