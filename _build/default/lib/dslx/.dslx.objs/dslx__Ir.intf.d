lib/dslx/ir.mli: Format Hw
