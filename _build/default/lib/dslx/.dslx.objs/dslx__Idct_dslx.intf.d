lib/dslx/idct_dslx.mli: Hw Ir
