lib/dslx/ir.ml: Format Hw List
