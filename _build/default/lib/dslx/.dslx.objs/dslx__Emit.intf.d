lib/dslx/emit.mli: Ir
