open Ir

(* AST construction sugar (32-bit arithmetic with explicit casts, like the
   XLS example the paper adapted). *)
let aw = 32
let v x = Var x
let l v = Lit { width = aw; value = v }
let li v = Lit { width = 32; value = v } (* loop/index literals *)
let ( +: ) a b = Bin (Hw.Netlist.Add, a, b)
let ( -: ) a b = Bin (Hw.Netlist.Sub, a, b)
let ( *: ) a b = Bin (Hw.Netlist.Mul, a, b)
let shl a n = Bin (Hw.Netlist.Shl, a, Lit { width = 6; value = n })
let asr_ a n = Bin (Hw.Netlist.Sra, a, Lit { width = 6; value = n })
let s32 e = Cast (e, aw, `Signed)
let lets bindings final =
  List.fold_right (fun (x, e) acc -> Let (x, e, acc)) bindings final

let w1 = Idct.Chenwang.w1
let w2 = Idct.Chenwang.w2
let w3 = Idct.Chenwang.w3
let w5 = Idct.Chenwang.w5
let w6 = Idct.Chenwang.w6
let w7 = Idct.Chenwang.w7

(* The shared butterfly (stages one to three).  [pre] differs between the
   row pass and the column pass, as do the output shift and clipping. *)
let butterfly ~x0_init ~round4 body =
  lets
    ([
       ("x2", s32 (Index (v "x", li 6)));
       ("x3", s32 (Index (v "x", li 2)));
       ("x4", s32 (Index (v "x", li 1)));
       ("x5", s32 (Index (v "x", li 7)));
       ("x6", s32 (Index (v "x", li 5)));
       ("x7", s32 (Index (v "x", li 3)));
       ("x0", x0_init);
       ("t8", (l w7 *: (v "x4" +: v "x5")) +: l round4);
       ("x4a", v "t8" +: (l (w1 - w7) *: v "x4"));
       ("x5a", v "t8" -: (l (w1 + w7) *: v "x5"));
       ("t8b", (l w3 *: (v "x6" +: v "x7")) +: l round4);
       ("x6a", v "t8b" -: (l (w3 - w5) *: v "x6"));
       ("x7a", v "t8b" -: (l (w3 + w5) *: v "x7"));
     ]
    @ body)
    (ArrayLit
       [ v "o0"; v "o1"; v "o2"; v "o3"; v "o4"; v "o5"; v "o6"; v "o7" ])

let stage234 ~shift3 =
  let sh e = if shift3 then asr_ e 3 else e in
  [
    ("x4b", sh (v "x4a"));
    ("x5b", sh (v "x5a"));
    ("x6b", sh (v "x6a"));
    ("x7b", sh (v "x7a"));
    ("x8", v "x0" +: v "x1");
    ("x0a", v "x0" -: v "x1");
    ("t1", (l w6 *: (v "x3" +: v "x2")) +: l (if shift3 then 4 else 0));
    ("x2a", sh (v "t1" -: (l (w2 + w6) *: v "x2")));
    ("x3a", sh (v "t1" +: (l (w2 - w6) *: v "x3")));
    ("x1a", v "x4b" +: v "x6b");
    ("x4c", v "x4b" -: v "x6b");
    ("x6c", v "x5b" +: v "x7b");
    ("x5c", v "x5b" -: v "x7b");
    ("x7c", v "x8" +: v "x3a");
    ("x8a", v "x8" -: v "x3a");
    ("x3b", v "x0a" +: v "x2a");
    ("x0b", v "x0a" -: v "x2a");
    ("x2b", asr_ ((l 181 *: (v "x4c" +: v "x5c")) +: l 128) 8);
    ("x4d", asr_ ((l 181 *: (v "x4c" -: v "x5c")) +: l 128) 8);
  ]

let row_fn =
  let out c e = (c, Cast (e, 16, `Signed)) in
  {
    fname = "row_pass";
    params = [ { pname = "x"; pty = Array (Bits 12, 8) } ];
    ret = Array (Bits 16, 8);
    body =
      butterfly
        ~x0_init:(shl (s32 (Index (v "x", li 0))) 11 +: l 128)
        ~round4:0
        (("x1", shl (s32 (Index (v "x", li 4))) 11)
         :: stage234 ~shift3:false
        @ [
            out "o0" (asr_ (v "x7c" +: v "x1a") 8);
            out "o1" (asr_ (v "x3b" +: v "x2b") 8);
            out "o2" (asr_ (v "x0b" +: v "x4d") 8);
            out "o3" (asr_ (v "x8a" +: v "x6c") 8);
            out "o4" (asr_ (v "x8a" -: v "x6c") 8);
            out "o5" (asr_ (v "x0b" -: v "x4d") 8);
            out "o6" (asr_ (v "x3b" -: v "x2b") 8);
            out "o7" (asr_ (v "x7c" -: v "x1a") 8);
          ]);
  }

let col_fn =
  let iclip e =
    Cast
      ( If
          ( Bin (Hw.Netlist.Lt Hw.Netlist.Signed, e, l (-256)),
            l (-256),
            If (Bin (Hw.Netlist.Lt Hw.Netlist.Signed, l 255, e), l 255, e) ),
        9,
        `Signed )
  in
  let out c e = (c, iclip (asr_ e 14)) in
  {
    fname = "col_pass";
    params = [ { pname = "x"; pty = Array (Bits 16, 8) } ];
    ret = Array (Bits 9, 8);
    body =
      butterfly
        ~x0_init:(shl (s32 (Index (v "x", li 0))) 8 +: l 8192)
        ~round4:4
        (("x1", shl (s32 (Index (v "x", li 4))) 8)
         :: stage234 ~shift3:true
        @ [
            out "o0" (v "x7c" +: v "x1a");
            out "o1" (v "x3b" +: v "x2b");
            out "o2" (v "x0b" +: v "x4d");
            out "o3" (v "x8a" +: v "x6c");
            out "o4" (v "x8a" -: v "x6c");
            out "o5" (v "x0b" -: v "x4d");
            out "o6" (v "x3b" -: v "x2b");
            out "o7" (v "x7c" -: v "x1a");
          ]);
  }

(* m[r*8 + c] with one of the two factors a loop variable. *)
let at base row col =
  let term x = match x with `V name -> v name | `I k -> li k in
  Index
    ( v base,
      Bin
        ( Hw.Netlist.Add,
          Bin (Hw.Netlist.Mul, term row, li 8),
          term col ) )

let zeros w n = ArrayLit (List.init n (fun _ -> Lit { width = w; value = 0 }))

let top_fn =
  {
    fname = "idct";
    params = [ { pname = "m"; pty = Array (Bits 12, 64) } ];
    ret = Array (Bits 9, 64);
    body =
      Let
        ( "mid",
          For
            {
              var = "r";
              count = 8;
              acc = "mid_acc";
              init = zeros 16 64;
              body =
                Let
                  ( "row",
                    Call
                      ( "row_pass",
                        [ ArrayLit (List.init 8 (fun c -> at "m" (`V "r") (`I c))) ] ),
                    For
                      {
                        var = "c";
                        count = 8;
                        acc = "acc2";
                        init = v "mid_acc";
                        body =
                          Update
                            ( v "acc2",
                              Bin
                                ( Hw.Netlist.Add,
                                  Bin (Hw.Netlist.Mul, v "r", li 8),
                                  v "c" ),
                              Index (v "row", v "c") );
                      } );
            },
          For
            {
              var = "c";
              count = 8;
              acc = "out_acc";
              init = zeros 9 64;
              body =
                Let
                  ( "col",
                    Call
                      ( "col_pass",
                        [ ArrayLit (List.init 8 (fun r -> at "mid" (`I r) (`V "c"))) ] ),
                    For
                      {
                        var = "r";
                        count = 8;
                        acc = "acc3";
                        init = v "out_acc";
                        body =
                          Update
                            ( v "acc3",
                              Bin
                                ( Hw.Netlist.Add,
                                  Bin (Hw.Netlist.Mul, v "r", li 8),
                                  v "c" ),
                              Index (v "col", v "r") );
                      } );
            } );
  }

let program = { fns = [ row_fn; col_fn; top_fn ]; top = "idct" }

let kernel_circuit () =
  (match Typecheck.check_program program with
  | Ok () -> ()
  | Error e -> failwith ("dslx idct does not typecheck: " ^ e));
  Lower.circuit program

let design ?(stages = 0) ~name () =
  let kernel_net =
    let c = kernel_circuit () in
    if stages = 0 then c else Hw.Pipeline.retime ~stages c
  in
  let kernel b (mid : Hw.Builder.s array) =
    let inputs =
      Array.to_list (Array.mapi (fun i s -> (Printf.sprintf "m_%d" i, s)) mid)
    in
    let outs = Hw.Instantiate.stamp b kernel_net ~inputs in
    Array.init 64 (fun i -> List.assoc (Printf.sprintf "out_%d" i) outs)
  in
  Axis.Adapter.wrap_matrix_kernel ~name ~latency:stages ~kernel ()
