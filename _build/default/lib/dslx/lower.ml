open Hw

(* Elaboration is written once against an abstract carrier of bit-vector
   values, then instantiated with hardware signals (circuit construction)
   and with Bits.t (the reference interpreter). *)
module type CARRIER = sig
  type s

  val width : s -> int
  val const : width:int -> int -> s
  val bin : Netlist.binop -> s -> s -> s
  val not_ : s -> s
  val neg : s -> s
  val mux : s -> s -> s -> s
  val uext : s -> int -> s
  val sext : s -> int -> s
end

module Eval (C : CARRIER) = struct
  type value = Static of int | Sig of C.s | Arr of value array

  let as_sig = function
    | Sig s -> s
    | Static _ -> failwith "Dslx: loop index used as data (cast it first)"
    | Arr _ -> failwith "Dslx: array used as scalar"

  let as_arr = function
    | Arr a -> a
    | Static _ | Sig _ -> failwith "Dslx: scalar used as array"

  let static_bin op x y =
    let b v = if v then 1 else 0 in
    match (op : Netlist.binop) with
    | Netlist.Add -> x + y
    | Netlist.Sub -> x - y
    | Netlist.Mul -> x * y
    | Netlist.And -> x land y
    | Netlist.Or -> x lor y
    | Netlist.Xor -> x lxor y
    | Netlist.Shl -> x lsl y
    | Netlist.Shr | Netlist.Sra -> x asr y
    | Netlist.Eq -> b (x = y)
    | Netlist.Ne -> b (x <> y)
    | Netlist.Lt _ -> b (x < y)
    | Netlist.Le _ -> b (x <= y)

  (* Indices like [r*8 + c] over loop variables are compile-time constants
     in DSLX; evaluate them statically before falling back to hardware. *)
  let rec static_eval env (e : Ir.expr) =
    match e with
    | Ir.Lit { value; _ } -> Some value
    | Ir.Var x -> (
        match List.assoc_opt x env with
        | Some (Static i) -> Some i
        | Some (Sig _ | Arr _) | None -> None)
    | Ir.Bin (op, a, b) -> (
        match (static_eval env a, static_eval env b) with
        | Some x, Some y -> Some (static_bin op x y)
        | _ -> None)
    | Ir.Not _ | Ir.Neg _ | Ir.Cast _ | Ir.If _ | Ir.Index _ | Ir.Update _
    | Ir.ArrayLit _ | Ir.Let _ | Ir.Call _ | Ir.For _ ->
        None

  let rec eval (p : Ir.program) env (e : Ir.expr) : value =
    match e with
    | Ir.Var x -> (
        match List.assoc_opt x env with
        | Some v -> v
        | None -> failwith (Printf.sprintf "Dslx: unbound %s" x))
    | Ir.Lit { width; value } -> Sig (C.const ~width value)
    | Ir.Bin (op, a, b) -> (
        match (eval p env a, eval p env b) with
        | Static x, Static y -> Static (static_bin op x y)
        | va, vb -> Sig (C.bin op (as_sig va) (as_sig vb)))
    | Ir.Not a -> Sig (C.not_ (as_sig (eval p env a)))
    | Ir.Neg a -> Sig (C.neg (as_sig (eval p env a)))
    | Ir.Cast (a, w, sg) -> (
        match eval p env a with
        | Static v -> Sig (C.const ~width:w v)
        | v ->
            let s = as_sig v in
            Sig ((match sg with `Signed -> C.sext | `Unsigned -> C.uext) s w))
    | Ir.If (c, t, f) -> (
        match eval p env c with
        | Static v -> if v <> 0 then eval p env t else eval p env f
        | vc ->
            let vt = eval p env t and vf = eval p env f in
            mux_value (as_sig vc) vt vf)
    | Ir.Index (arr, idx) -> (
        let a = as_arr (eval p env arr) in
        match
          match static_eval env idx with
          | Some i -> Static i
          | None -> eval p env idx
        with
        | Static i ->
            if i < 0 || i >= Array.length a then
              failwith "Dslx: static index out of bounds"
            else a.(i)
        | vi ->
            let si = as_sig vi in
            let n = Array.length a in
            let rec pick i =
              if i = n - 1 then a.(i)
              else
                let here = C.bin Netlist.Eq si (C.const ~width:(C.width si) i) in
                mux_value here a.(i) (pick (i + 1))
            in
            pick 0)
    | Ir.Update (arr, idx, v) -> (
        let a = Array.copy (as_arr (eval p env arr)) in
        let nv = eval p env v in
        match
          match static_eval env idx with
          | Some i -> Static i
          | None -> eval p env idx
        with
        | Static i ->
            if i < 0 || i >= Array.length a then
              failwith "Dslx: static update index out of bounds";
            a.(i) <- nv;
            Arr a
        | vi ->
            let si = as_sig vi in
            Arr
              (Array.mapi
                 (fun i old ->
                   let here =
                     C.bin Netlist.Eq si (C.const ~width:(C.width si) i)
                   in
                   mux_value here nv old)
                 a))
    | Ir.ArrayLit es -> Arr (Array.of_list (List.map (eval p env) es))
    | Ir.Let (x, v, body) -> eval p ((x, eval p env v) :: env) body
    | Ir.Call (name, args) ->
        let f = Ir.find_fn p name in
        let bound =
          List.map2
            (fun (prm : Ir.param) arg -> (prm.Ir.pname, eval p env arg))
            f.Ir.params args
        in
        eval p bound f.Ir.body
    | Ir.For { var; count; acc; init; body } ->
        let rec go i acc_v =
          if i = count then acc_v
          else
            let env' = (var, Static i) :: (acc, acc_v) :: env in
            go (i + 1) (eval p env' body)
        in
        go 0 (eval p env init)

  and mux_value c t f =
    match (t, f) with
    | Arr ta, Arr fa ->
        if Array.length ta <> Array.length fa then
          failwith "Dslx: mux over arrays of different lengths";
        Arr (Array.init (Array.length ta) (fun i -> mux_value c ta.(i) fa.(i)))
    | t, f -> Sig (C.mux c (as_sig t) (as_sig f))

  (* Flatten a typed value to scalar leaves, depth-first. *)
  let rec flatten v =
    match v with
    | Static _ -> failwith "Dslx: static value in result"
    | Sig s -> [ s ]
    | Arr a -> List.concat_map flatten (Array.to_list a)
end

let rec flat_ports prefix (ty : Ir.ty) =
  match ty with
  | Ir.Bits w -> [ (prefix, w) ]
  | Ir.Array (elt, n) ->
      List.concat
        (List.init n (fun i -> flat_ports (Printf.sprintf "%s_%d" prefix i) elt))

let circuit (p : Ir.program) =
  let top = Ir.find_fn p p.Ir.top in
  let b = Builder.create p.Ir.top in
  let module HC = struct
    type s = Builder.s

    let width = Builder.width
    let const ~width v = Builder.const b ~width v

    let bin (op : Netlist.binop) x y =
      match op with
      | Netlist.Add -> Builder.add b x y
      | Netlist.Sub -> Builder.sub b x y
      | Netlist.Mul -> Builder.mul b x y
      | Netlist.And -> Builder.and_ b x y
      | Netlist.Or -> Builder.or_ b x y
      | Netlist.Xor -> Builder.xor_ b x y
      | Netlist.Shl -> Builder.shl b x y
      | Netlist.Shr -> Builder.shr b x y
      | Netlist.Sra -> Builder.sra b x y
      | Netlist.Eq -> Builder.eq b x y
      | Netlist.Ne -> Builder.ne b x y
      | Netlist.Lt sg -> Builder.lt b ~signed:(sg = Netlist.Signed) x y
      | Netlist.Le sg -> Builder.le b ~signed:(sg = Netlist.Signed) x y

    let not_ = Builder.not_ b
    let neg = Builder.neg b
    let mux = Builder.mux b
    let uext = Builder.uext b
    let sext = Builder.sext b
  end in
  let module E = Eval (HC) in
  (* Build parameter values from flattened input ports. *)
  let rec param_value prefix (ty : Ir.ty) : E.value =
    match ty with
    | Ir.Bits w -> E.Sig (Builder.input b prefix w)
    | Ir.Array (elt, n) ->
        E.Arr
          (Array.init n (fun i ->
               param_value (Printf.sprintf "%s_%d" prefix i) elt))
  in
  let env =
    List.map
      (fun (prm : Ir.param) -> (prm.Ir.pname, param_value prm.Ir.pname prm.Ir.pty))
      top.Ir.params
  in
  let result = E.eval p env top.Ir.body in
  let leaves = E.flatten result in
  let names = flat_ports "out" top.Ir.ret in
  List.iter2 (fun (name, _) s -> Builder.output b name s) names leaves;
  Builder.finalize b

let interpret (p : Ir.program) inputs =
  let module SC = struct
    type s = Bits.t

    let width = Bits.width
    let const ~width v = Bits.create ~width v

    let bin (op : Netlist.binop) x y =
      match op with
      | Netlist.Add -> Bits.add x y
      | Netlist.Sub -> Bits.sub x y
      | Netlist.Mul -> Bits.mul x y
      | Netlist.And -> Bits.logand x y
      | Netlist.Or -> Bits.logor x y
      | Netlist.Xor -> Bits.logxor x y
      | Netlist.Shl -> Bits.shift_left x y
      | Netlist.Shr -> Bits.shift_right_logical x y
      | Netlist.Sra -> Bits.shift_right_arith x y
      | Netlist.Eq -> Bits.eq x y
      | Netlist.Ne -> Bits.ne x y
      | Netlist.Lt sg -> Bits.lt ~signed:(sg = Netlist.Signed) x y
      | Netlist.Le sg -> Bits.le ~signed:(sg = Netlist.Signed) x y

    let not_ = Bits.lognot
    let neg = Bits.neg
    let mux c t f = if Bits.to_int c = 1 then t else f
    let uext = Bits.uext
    let sext = Bits.sext
  end in
  let module E = Eval (SC) in
  let top = Ir.find_fn p p.Ir.top in
  let flat_params =
    List.concat_map
      (fun (prm : Ir.param) -> flat_ports prm.Ir.pname prm.Ir.pty)
      top.Ir.params
  in
  if List.length flat_params <> List.length inputs then
    failwith "Dslx.interpret: input count mismatch";
  let rec build_value ty vals =
    match (ty : Ir.ty) with
    | Ir.Bits w -> (
        match vals with
        | v :: rest -> (E.Sig (Bits.create ~width:w v), rest)
        | [] -> failwith "Dslx.interpret: not enough inputs")
    | Ir.Array (elt, n) ->
        let items = Array.make n (E.Static 0) in
        let rest = ref vals in
        for i = 0 to n - 1 do
          let v, r = build_value elt !rest in
          items.(i) <- v;
          rest := r
        done;
        (E.Arr items, !rest)
  in
  let env, remaining =
    List.fold_left
      (fun (env, vals) (prm : Ir.param) ->
        let v, rest = build_value prm.Ir.pty vals in
        ((prm.Ir.pname, v) :: env, rest))
      ([], inputs) top.Ir.params
  in
  assert (remaining = []);
  let result = E.eval p (List.rev env) top.Ir.body in
  List.map Bits.to_int (E.flatten result)
