(** Width/type checking of {!Ir} programs.

    Verifies operand width agreement of every operator, array shapes of
    indexing/update/literals, call signatures, loop accumulator types and
    the declared return types.  Elaboration ({!Lower}) assumes a checked
    program. *)

val check_fn : Ir.program -> Ir.fn -> (Ir.ty, string) result
(** Returns the function's (checked) return type. *)

val check_program : Ir.program -> (unit, string) result
(** Checks every function and the presence of [top]. *)
