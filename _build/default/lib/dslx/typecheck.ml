let ( let* ) = Result.bind

let rec infer (p : Ir.program) env (e : Ir.expr) : (Ir.ty, string) result =
  match e with
  | Ir.Var x -> (
      match List.assoc_opt x env with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unbound variable %s" x))
  | Ir.Lit { width; _ } ->
      if width >= 1 && width <= Hw.Bits.max_width then Ok (Ir.Bits width)
      else Error (Printf.sprintf "literal width %d out of range" width)
  | Ir.Bin (op, a, b) -> (
      let* ta = infer p env a in
      let* tb = infer p env b in
      match (ta, tb) with
      | Ir.Bits wa, Ir.Bits wb -> (
          match op with
          | Hw.Netlist.Eq | Hw.Netlist.Ne | Hw.Netlist.Lt _ | Hw.Netlist.Le _
            ->
              if wa = wb then Ok (Ir.Bits 1)
              else Error (Printf.sprintf "comparison widths %d vs %d" wa wb)
          | Hw.Netlist.Shl | Hw.Netlist.Shr | Hw.Netlist.Sra -> Ok (Ir.Bits wa)
          | Hw.Netlist.Add | Hw.Netlist.Sub | Hw.Netlist.Mul | Hw.Netlist.And
          | Hw.Netlist.Or | Hw.Netlist.Xor ->
              if wa = wb then Ok (Ir.Bits wa)
              else Error (Printf.sprintf "operand widths %d vs %d" wa wb))
      | _ -> Error "operator applied to arrays")
  | Ir.Not a | Ir.Neg a -> (
      let* t = infer p env a in
      match t with
      | Ir.Bits _ -> Ok t
      | Ir.Array _ -> Error "unary operator applied to an array")
  | Ir.Cast (a, w, _) -> (
      let* t = infer p env a in
      match t with
      | Ir.Bits _ ->
          if w >= 1 && w <= Hw.Bits.max_width then Ok (Ir.Bits w)
          else Error "cast width out of range"
      | Ir.Array _ -> Error "cast applied to an array")
  | Ir.If (c, t, f) -> (
      let* tc = infer p env c in
      match tc with
      | Ir.Bits 1 ->
          let* tt = infer p env t in
          let* tf = infer p env f in
          if Ir.ty_equal tt tf then Ok tt else Error "if arms differ in type"
      | _ -> Error "if condition must be bits[1]")
  | Ir.Index (arr, idx) -> (
      let* ta = infer p env arr in
      let* ti = infer p env idx in
      match (ta, ti) with
      | Ir.Array (elt, _), Ir.Bits _ -> Ok elt
      | _ -> Error "indexing a non-array (or non-scalar index)")
  | Ir.Update (arr, idx, v) -> (
      let* ta = infer p env arr in
      let* ti = infer p env idx in
      let* tv = infer p env v in
      match (ta, ti) with
      | Ir.Array (elt, _), Ir.Bits _ ->
          if Ir.ty_equal elt tv then Ok ta
          else Error "update value type differs from element type"
      | _ -> Error "updating a non-array")
  | Ir.ArrayLit [] -> Error "empty array literal"
  | Ir.ArrayLit (e0 :: rest) ->
      let* t0 = infer p env e0 in
      let* () =
        List.fold_left
          (fun acc e ->
            let* () = acc in
            let* t = infer p env e in
            if Ir.ty_equal t t0 then Ok ()
            else Error "array literal elements differ in type")
          (Ok ()) rest
      in
      Ok (Ir.Array (t0, 1 + List.length rest))
  | Ir.Let (x, v, body) ->
      let* tv = infer p env v in
      infer p ((x, tv) :: env) body
  | Ir.Call (name, args) -> (
      match List.find_opt (fun (f : Ir.fn) -> f.fname = name) p.fns with
      | None -> Error (Printf.sprintf "unknown function %s" name)
      | Some f ->
          if List.length args <> List.length f.params then
            Error (Printf.sprintf "%s: arity mismatch" name)
          else
            let* () =
              List.fold_left2
                (fun acc arg (prm : Ir.param) ->
                  let* () = acc in
                  let* t = infer p env arg in
                  if Ir.ty_equal t prm.pty then Ok ()
                  else
                    Error
                      (Format.asprintf "%s: argument %s expects %a" name
                         prm.pname Ir.pp_ty prm.pty))
                (Ok ()) args f.params
            in
            Ok f.ret)
  | Ir.For { var; count; acc; init; body } ->
      if count < 1 then Error "for count must be positive"
      else
        let* ti = infer p env init in
        let env' = (var, Ir.Bits 32) :: (acc, ti) :: env in
        let* tb = infer p env' body in
        if Ir.ty_equal tb ti then Ok ti
        else Error "for body type differs from accumulator type"

let check_fn p (f : Ir.fn) =
  let env = List.map (fun (prm : Ir.param) -> (prm.pname, prm.pty)) f.params in
  let* t = infer p env f.body in
  if Ir.ty_equal t f.ret then Ok t
  else Error (Format.asprintf "%s: body type differs from declared %a" f.fname Ir.pp_ty f.ret)

let check_program p =
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        match check_fn p f with Ok _ -> Ok () | Error e -> Error e)
      (Ok ()) p.Ir.fns
  in
  match List.find_opt (fun (f : Ir.fn) -> f.fname = p.Ir.top) p.Ir.fns with
  | Some _ -> Ok ()
  | None -> Error (Printf.sprintf "top function %s not defined" p.Ir.top)
