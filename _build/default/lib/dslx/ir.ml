type ty = Bits of int | Array of ty * int

type expr =
  | Var of string
  | Lit of { width : int; value : int }
  | Bin of Hw.Netlist.binop * expr * expr
  | Not of expr
  | Neg of expr
  | Cast of expr * int * [ `Signed | `Unsigned ]
  | If of expr * expr * expr
  | Index of expr * expr
  | Update of expr * expr * expr
  | ArrayLit of expr list
  | Let of string * expr * expr
  | Call of string * expr list
  | For of { var : string; count : int; acc : string; init : expr; body : expr }

type param = { pname : string; pty : ty }
type fn = { fname : string; params : param list; ret : ty; body : expr }
type program = { fns : fn list; top : string }

let find_fn p name = List.find (fun f -> f.fname = name) p.fns

let rec ty_equal a b =
  match (a, b) with
  | Bits x, Bits y -> x = y
  | Array (t, n), Array (u, m) -> n = m && ty_equal t u
  | Bits _, Array _ | Array _, Bits _ -> false

let rec pp_ty ppf = function
  | Bits w -> Format.fprintf ppf "bits[%d]" w
  | Array (t, n) -> Format.fprintf ppf "%a[%d]" pp_ty t n
