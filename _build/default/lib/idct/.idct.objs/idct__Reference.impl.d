lib/idct/reference.ml: Array Block Float
