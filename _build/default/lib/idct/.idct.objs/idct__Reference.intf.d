lib/idct/reference.mli: Block
