lib/idct/chenwang.ml: Array Block
