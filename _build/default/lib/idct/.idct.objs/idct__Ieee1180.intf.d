lib/idct/ieee1180.mli: Block Format
