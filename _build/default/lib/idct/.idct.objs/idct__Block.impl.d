lib/idct/block.ml: Array Format
