lib/idct/ieee1180.ml: Array Block Float Format List Printf Reference
