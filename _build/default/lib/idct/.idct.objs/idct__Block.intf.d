lib/idct/block.mli: Format
