lib/idct/chenwang.mli: Block
