(** VCD (IEEE 1364 value-change-dump) waveform recording.

    Attach a recorder to a simulator, step the clock through {!step}, and
    write the trace for any VCD viewer (GTKWave etc.).  Only named nodes
    and ports are recorded by default; [all_nodes] records everything. *)

type t

val create : ?all_nodes:bool -> Sim.t -> t
(** Snapshots are taken from the given simulator; ports and named nodes
    (registers, labelled signals) are traced. *)

val step : t -> unit
(** Advance the underlying simulator one clock edge and record the new
    values. *)

val run : t -> int -> unit

val to_string : t -> string
(** The complete VCD document for the recorded window. *)

val save : t -> string -> unit
(** Write to a file. *)
