type t = {
  device_name : string;
  lut_capacity : int;
  ff_capacity : int;
  dsp_capacity : int;
  io_capacity : int;
  lut_delay : float;
  carry_per_bit : float;
  carry_base : float;
  dsp_delay : float;
  clk_to_q : float;
  setup : float;
  dsp_a_width : int;
  dsp_b_width : int;
}

let xcvu9p =
  {
    device_name = "xcvu9p-flgb2104-2-e";
    lut_capacity = 1_182_240;
    ff_capacity = 2_364_480;
    dsp_capacity = 6_840;
    io_capacity = 702;
    lut_delay = 0.30;
    carry_per_bit = 0.010;
    carry_base = 0.35;
    dsp_delay = 2.5;
    clk_to_q = 0.15;
    setup = 0.10;
    dsp_a_width = 27;
    dsp_b_width = 18;
  }

let utilization t ~luts ~ffs ~dsps =
  let frac used cap = float_of_int used /. float_of_int cap in
  List.fold_left max 0.
    [
      frac luts t.lut_capacity;
      frac ffs t.ff_capacity;
      frac dsps t.dsp_capacity;
    ]
