type path_point = { point_uid : Netlist.uid; point_desc : string }

type result = {
  period_ns : float;
  fmax_mhz : float;
  critical_path : path_point list;
  logic_levels : int;
}

let adder_delay (dev : Device.t) w =
  dev.carry_base +. (dev.carry_per_bit *. float_of_int w)

let node_delay (dev : Device.t) ~use_dsp (c : Netlist.t) (nd : Netlist.node) =
  let w = nd.width in
  match nd.kind with
  | Netlist.Input _ | Netlist.Const _ | Netlist.Slice _ | Netlist.Concat _
  | Netlist.Uext _ | Netlist.Sext _ | Netlist.Reg _
  | Netlist.Unop (Netlist.Not, _) ->
      0.
  | Netlist.Mem_read _ -> 2. *. dev.lut_delay
  | Netlist.Unop (Netlist.Neg, _) -> adder_delay dev w
  | Netlist.Mux _ -> dev.lut_delay
  | Netlist.Binop (op, a, b) -> (
      let wa = (Netlist.node c a).width in
      match op with
      | Netlist.And | Netlist.Or | Netlist.Xor -> dev.lut_delay
      | Netlist.Add | Netlist.Sub -> adder_delay dev w
      | Netlist.Lt _ | Netlist.Le _ -> adder_delay dev wa
      | Netlist.Eq | Netlist.Ne -> 2. *. dev.lut_delay
      | Netlist.Shl | Netlist.Shr | Netlist.Sra ->
          (match Techmap.const_value c (Netlist.node c b) with
          | Some _ -> 0.
          | None ->
              let rec levels k acc = if k >= w then acc else levels (2 * k) (acc + 1) in
              float_of_int (levels 1 0) *. dev.lut_delay)
      | Netlist.Mul -> (
          match Techmap.const_mul_operand c nd with
          | Some v when v = 0 || abs v land (abs v - 1) = 0 -> 0.
          | Some v ->
              let adders = Techmap.csd_adders v in
              if use_dsp && w >= 10 && adders >= 3 then dev.dsp_delay
              else
                let rec levels k acc =
                  if k >= adders + 1 then acc else levels (2 * k) (acc + 1)
                in
                float_of_int (max 1 (levels 1 0)) *. adder_delay dev w
          | None ->
              if use_dsp then dev.dsp_delay
              else
                (* LUT multiplier: partial-product rows folded through a
                   carry-save tree; depth grows with log of the width. *)
                let rec levels k acc = if k >= w then acc else levels (2 * k) (acc + 1) in
                float_of_int (1 + levels 1 0) *. adder_delay dev w))

let analyze ?(use_dsp = true) (dev : Device.t) (c : Netlist.t) =
  let n = Netlist.num_nodes c in
  let arrival = Array.make n 0. in
  let pred = Array.make n (-1) in
  let order = Netlist.comb_order c in
  let delay = Array.make n 0. in
  Array.iter
    (fun (nd : Netlist.node) -> delay.(nd.uid) <- node_delay dev ~use_dsp c nd)
    c.nodes;
  Array.iter
    (fun u ->
      let nd = Netlist.node c u in
      let base =
        match nd.kind with
        | Netlist.Reg _ -> dev.clk_to_q
        | Netlist.Input _ -> 0.
        | _ ->
            List.fold_left
              (fun acc op ->
                if arrival.(op) > acc then begin
                  pred.(u) <- op;
                  arrival.(op)
                end
                else acc)
              0. (Netlist.operands nd)
      in
      arrival.(u) <- base +. delay.(u))
    order;
  (* Endpoints: register D pins and primary outputs. *)
  let worst = ref 0. and worst_end = ref (-1) in
  let consider uid v =
    if v > !worst then begin
      worst := v;
      worst_end := uid
    end
  in
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; _ } -> consider d (arrival.(d) +. dev.setup)
      | _ -> ())
    c.nodes;
  List.iter (fun (_, u) -> consider u (arrival.(u) +. dev.setup)) c.outputs;
  (* clk-to-q is charged at the launching register, setup at the endpoint;
     clamp to a 1 ns floor (no practical design closes beyond 1 GHz here). *)
  let period = Float.max !worst 1.0 in
  (* Walk the predecessor chain back from the worst endpoint. *)
  let rec walk uid acc =
    if uid < 0 then acc
    else
      let nd = Netlist.node c uid in
      let desc =
        Format.asprintf "n%d %a (%.2fns)" uid Netlist.pp_kind nd.kind
          delay.(uid)
      in
      walk pred.(uid) ({ point_uid = uid; point_desc = desc } :: acc)
  in
  let path = if !worst_end >= 0 then walk !worst_end [] else [] in
  let levels =
    List.length (List.filter (fun p -> delay.(p.point_uid) > 0.) path)
  in
  {
    period_ns = period;
    fmax_mhz = 1000. /. period;
    critical_path = path;
    logic_levels = levels;
  }
