type uid = int
type mem_id = int

type signedness = Signed | Unsigned

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sra
  | Eq
  | Ne
  | Lt of signedness
  | Le of signedness

type kind =
  | Input of string
  | Const of Bits.t
  | Unop of unop * uid
  | Binop of binop * uid * uid
  | Mux of uid * uid * uid
  | Slice of uid * int * int
  | Concat of uid * uid
  | Uext of uid
  | Sext of uid
  | Reg of { d : uid; enable : uid option; init : Bits.t }
  | Mem_read of mem_id * uid

type node = { uid : uid; width : int; kind : kind; name : string option }

type write_port = { w_enable : uid; w_addr : uid; w_data : uid }

type mem = {
  mem_id : mem_id;
  mem_name : string;
  mem_size : int;
  mem_width : int;
  mem_writes : write_port list;
}

type t = {
  circuit_name : string;
  nodes : node array;
  mems : mem array;
  inputs : (string * uid) list;
  outputs : (string * uid) list;
}

let node t uid = t.nodes.(uid)
let num_nodes t = Array.length t.nodes

let operands n =
  match n.kind with
  | Input _ | Const _ | Reg _ -> []
  | Mem_read (_, a) -> [ a ]
  | Unop (_, a) | Slice (a, _, _) | Uext a | Sext a -> [ a ]
  | Binop (_, a, b) | Concat (a, b) -> [ a; b ]
  | Mux (s, a, b) -> [ s; a; b ]

let reg_inputs n =
  match n.kind with
  | Reg { d; enable = Some e; _ } -> [ d; e ]
  | Reg { d; enable = None; _ } -> [ d ]
  | Input _ | Const _ | Unop _ | Binop _ | Mux _ | Slice _ | Concat _ | Uext _
  | Sext _ | Mem_read _ ->
      []

let is_reg n = match n.kind with Reg _ -> true | _ -> false

let find_input t name = List.assoc name t.inputs
let find_output t name = List.assoc name t.outputs

let port_error t dir ~caller name =
  let dirname, ports =
    match dir with
    | `In -> ("input", t.inputs)
    | `Out -> ("output", t.outputs)
  in
  invalid_arg
    (Printf.sprintf "%s: no %s port %s (circuit %s has: %s)" caller dirname
       name t.circuit_name
       (String.concat ", " (List.map fst ports)))

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sra -> "sra"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt Signed -> "slt"
  | Lt Unsigned -> "ult"
  | Le Signed -> "sle"
  | Le Unsigned -> "ule"

let pp_kind ppf = function
  | Input s -> Format.fprintf ppf "input %s" s
  | Const b -> Format.fprintf ppf "const %a" Bits.pp b
  | Unop (Not, a) -> Format.fprintf ppf "not n%d" a
  | Unop (Neg, a) -> Format.fprintf ppf "neg n%d" a
  | Binop (op, a, b) -> Format.fprintf ppf "%s n%d n%d" (binop_name op) a b
  | Mux (s, a, b) -> Format.fprintf ppf "mux n%d n%d n%d" s a b
  | Slice (a, hi, lo) -> Format.fprintf ppf "n%d[%d:%d]" a hi lo
  | Concat (a, b) -> Format.fprintf ppf "concat n%d n%d" a b
  | Uext a -> Format.fprintf ppf "uext n%d" a
  | Sext a -> Format.fprintf ppf "sext n%d" a
  | Reg { d; enable = Some e; _ } -> Format.fprintf ppf "reg d=n%d en=n%d" d e
  | Reg { d; enable = None; _ } -> Format.fprintf ppf "reg d=n%d" d
  | Mem_read (m, a) -> Format.fprintf ppf "mem%d[n%d]" m a

let fail_node t uid fmt =
  Format.kasprintf
    (fun msg ->
      failwith
        (Printf.sprintf "circuit %s: node n%d: %s" t.circuit_name uid msg))
    fmt

let comb_order t =
  (* Kahn's algorithm over combinational edges (register data inputs are not
     edges).  Any node left unprocessed lies on a combinational cycle. *)
  let n = num_nodes t in
  let indegree = Array.make n 0 in
  Array.iter
    (fun nd -> indegree.(nd.uid) <- List.length (operands nd))
    t.nodes;
  let dependents = Array.make n [] in
  Array.iter
    (fun nd ->
      List.iter (fun r -> dependents.(r) <- nd.uid :: dependents.(r)) (operands nd))
    t.nodes;
  let order = Array.make n 0 in
  let pos = ref 0 in
  let queue = Queue.create () in
  Array.iter (fun nd -> if indegree.(nd.uid) = 0 then Queue.add nd.uid queue) t.nodes;
  while not (Queue.is_empty queue) do
    let uid = Queue.take queue in
    order.(!pos) <- uid;
    incr pos;
    List.iter
      (fun d ->
        indegree.(d) <- indegree.(d) - 1;
        if indegree.(d) = 0 then Queue.add d queue)
      dependents.(uid)
  done;
  if !pos <> n then begin
    let stuck = ref (-1) in
    Array.iteri (fun i deg -> if deg > 0 && !stuck < 0 then stuck := i) indegree;
    failwith
      (Printf.sprintf "circuit %s: combinational cycle through n%d"
         t.circuit_name !stuck)
  end;
  order

let validate t =
  let n = num_nodes t in
  let check_ref uid r =
    if r < 0 || r >= n then fail_node t uid "dangling reference n%d" r
  in
  Array.iteri
    (fun i nd ->
      if nd.uid <> i then fail_node t i "uid/index mismatch (%d)" nd.uid;
      if nd.width < 1 || nd.width > Bits.max_width then
        fail_node t i "bad width %d" nd.width;
      List.iter (check_ref i) (operands nd);
      List.iter (check_ref i) (reg_inputs nd);
      let w r = t.nodes.(r).width in
      match nd.kind with
      | Input _ -> ()
      | Const b ->
          if Bits.width b <> nd.width then fail_node t i "const width mismatch"
      | Unop (_, a) ->
          if w a <> nd.width then fail_node t i "unop width mismatch"
      | Binop ((Eq | Ne | Lt _ | Le _), a, b) ->
          if nd.width <> 1 then fail_node t i "comparison must be 1 bit wide";
          if w a <> w b then fail_node t i "comparison operand widths differ"
      | Binop ((Shl | Shr | Sra), a, _) ->
          if w a <> nd.width then fail_node t i "shift width mismatch"
      | Binop (_, a, b) ->
          if w a <> nd.width || w b <> nd.width then
            fail_node t i "binop width mismatch (%d op %d -> %d)" (w a) (w b)
              nd.width
      | Mux (s, a, b) ->
          if w s <> 1 then fail_node t i "mux select must be 1 bit";
          if w a <> nd.width || w b <> nd.width then
            fail_node t i "mux arm width mismatch"
      | Slice (a, hi, lo) ->
          if lo < 0 || hi >= w a || hi < lo then
            fail_node t i "slice [%d:%d] out of range for width %d" hi lo (w a);
          if nd.width <> hi - lo + 1 then fail_node t i "slice width mismatch"
      | Concat (a, b) ->
          if nd.width <> w a + w b then fail_node t i "concat width mismatch"
      | Uext a | Sext a ->
          if nd.width < w a then
            fail_node t i "extension narrows %d -> %d" (w a) nd.width
      | Mem_read (m, a) ->
          if m < 0 || m >= Array.length t.mems then
            fail_node t i "dangling memory reference m%d" m;
          let mem = t.mems.(m) in
          if nd.width <> mem.mem_width then
            fail_node t i "memory read width mismatch";
          ignore a
      | Reg { d; enable; init } ->
          if w d <> nd.width then fail_node t i "reg d width mismatch";
          if Bits.width init <> nd.width then
            fail_node t i "reg init width mismatch";
          Option.iter
            (fun e ->
              if w e <> 1 then fail_node t i "reg enable must be 1 bit")
            enable)
    t.nodes;
  List.iter
    (fun (name, r) ->
      if r < 0 || r >= n then
        failwith
          (Printf.sprintf "circuit %s: port %s dangling" t.circuit_name name))
    (t.inputs @ t.outputs);
  Array.iter
    (fun m ->
      List.iter
        (fun w ->
          let check r =
            if r < 0 || r >= n then
              failwith
                (Printf.sprintf "circuit %s: memory %s has a dangling write"
                   t.circuit_name m.mem_name)
          in
          check w.w_enable;
          check w.w_addr;
          check w.w_data;
          if t.nodes.(w.w_enable).width <> 1 then
            failwith
              (Printf.sprintf "circuit %s: memory %s write enable not 1 bit"
                 t.circuit_name m.mem_name);
          if t.nodes.(w.w_data).width <> m.mem_width then
            failwith
              (Printf.sprintf "circuit %s: memory %s write data width"
                 t.circuit_name m.mem_name))
        m.mem_writes)
    t.mems;
  ignore (comb_order t)

let stats t =
  let tbl = Hashtbl.create 16 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  Array.iter
    (fun nd ->
      match nd.kind with
      | Input _ -> bump "input"
      | Const _ -> bump "const"
      | Unop _ -> bump "unop"
      | Binop (op, _, _) -> bump (binop_name op)
      | Mux _ -> bump "mux"
      | Slice _ -> bump "slice"
      | Concat _ -> bump "concat"
      | Uext _ | Sext _ -> bump "ext"
      | Reg _ -> bump "reg"
      | Mem_read _ -> bump "mem_read")
    t.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
