let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Choose a unique Verilog identifier per node: the debug name when free,
   otherwise the name suffixed with the uid, otherwise n<uid>. *)
let build_names (c : Netlist.t) =
  let used = Hashtbl.create 64 in
  let keywords =
    [ "module"; "input"; "output"; "wire"; "reg"; "assign"; "always"; "begin";
      "end"; "if"; "else"; "posedge"; "signed"; "clk"; "rst" ]
  in
  List.iter (fun k -> Hashtbl.replace used k ()) keywords;
  let names = Array.make (Netlist.num_nodes c) "" in
  let claim uid candidate =
    let nm =
      if Hashtbl.mem used candidate then Printf.sprintf "%s_%d" candidate uid
      else candidate
    in
    Hashtbl.replace used nm ();
    names.(uid) <- nm
  in
  (* Ports first so they keep their declared names. *)
  List.iter (fun (nm, u) -> claim u (sanitize nm)) c.inputs;
  Array.iter
    (fun (nd : Netlist.node) ->
      if names.(nd.uid) = "" then
        match nd.name with
        | Some nm -> claim nd.uid (sanitize nm)
        | None -> claim nd.uid (Printf.sprintf "n%d" nd.uid))
    c.nodes;
  names

let has_regs (c : Netlist.t) =
  Array.exists Netlist.is_reg c.nodes || Array.length c.mems > 0

let emit (c : Netlist.t) =
  let names = build_names c in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n uid = names.(uid) in
  let width uid = (Netlist.node c uid).width in
  let seq = has_regs c in
  let ports =
    (if seq then [ "clk"; "rst" ] else [])
    @ List.map (fun (nm, _) -> sanitize nm) c.inputs
    @ List.map (fun (nm, _) -> sanitize nm) c.outputs
  in
  pr "module %s (\n" (sanitize c.circuit_name);
  pr "%s\n" (String.concat ",\n" (List.map (fun p -> "  " ^ p) ports));
  pr ");\n";
  if seq then begin
    pr "  input wire clk;\n";
    pr "  input wire rst;\n"
  end;
  List.iter
    (fun (nm, u) ->
      if width u = 1 then pr "  input wire %s;\n" (sanitize nm)
      else pr "  input wire [%d:0] %s;\n" (width u - 1) (sanitize nm))
    c.inputs;
  List.iter
    (fun (nm, u) ->
      if width u = 1 then pr "  output wire %s;\n" (sanitize nm)
      else pr "  output wire [%d:0] %s;\n" (width u - 1) (sanitize nm))
    c.outputs;
  let signed s = Printf.sprintf "$signed(%s)" s in
  Array.iter
    (fun (nd : Netlist.node) ->
      let decl kw =
        if nd.width = 1 then pr "  %s %s" kw (n nd.uid)
        else pr "  %s [%d:0] %s" kw (nd.width - 1) (n nd.uid)
      in
      match nd.kind with
      | Netlist.Input _ -> ()
      | Netlist.Reg _ -> decl "reg"; pr ";\n"
      | Netlist.Const b ->
          decl "wire";
          pr " = %d'd%d;\n" (Bits.width b) (Bits.to_int b)
      | Netlist.Unop (op, a) ->
          decl "wire";
          let sym = match op with Netlist.Not -> "~" | Netlist.Neg -> "-" in
          pr " = %s%s;\n" sym (n a)
      | Netlist.Binop (op, a, b) ->
          decl "wire";
          let plain sym = pr " = %s %s %s;\n" (n a) sym (n b) in
          let signed2 sym =
            pr " = %s %s %s;\n" (signed (n a)) sym (signed (n b))
          in
          (match op with
          | Netlist.Add -> plain "+"
          | Netlist.Sub -> plain "-"
          | Netlist.Mul -> plain "*"
          | Netlist.And -> plain "&"
          | Netlist.Or -> plain "|"
          | Netlist.Xor -> plain "^"
          | Netlist.Shl -> plain "<<"
          | Netlist.Shr -> plain ">>"
          | Netlist.Sra -> pr " = %s >>> %s;\n" (signed (n a)) (n b)
          | Netlist.Eq -> plain "=="
          | Netlist.Ne -> plain "!="
          | Netlist.Lt Netlist.Unsigned -> plain "<"
          | Netlist.Le Netlist.Unsigned -> plain "<="
          | Netlist.Lt Netlist.Signed -> signed2 "<"
          | Netlist.Le Netlist.Signed -> signed2 "<=")
      | Netlist.Mux (s, a, b) ->
          decl "wire";
          pr " = %s ? %s : %s;\n" (n s) (n a) (n b)
      | Netlist.Slice (a, hi, lo) ->
          decl "wire";
          if hi = lo then pr " = %s[%d];\n" (n a) hi
          else pr " = %s[%d:%d];\n" (n a) hi lo
      | Netlist.Concat (a, b) ->
          decl "wire";
          pr " = {%s, %s};\n" (n a) (n b)
      | Netlist.Uext a ->
          decl "wire";
          pr " = {%d'd0, %s};\n" (nd.width - width a) (n a)
      | Netlist.Sext a ->
          decl "wire";
          pr " = {{%d{%s[%d]}}, %s};\n" (nd.width - width a) (n a)
            (width a - 1) (n a)
      | Netlist.Mem_read (m, a) ->
          decl "wire";
          pr " = %s[%s];\n" (sanitize c.mems.(m).Netlist.mem_name) (n a))
    c.nodes;
  (* Memories. *)
  Array.iter
    (fun (m : Netlist.mem) ->
      pr "  reg [%d:0] %s [0:%d];\n" (m.Netlist.mem_width - 1)
        (sanitize m.Netlist.mem_name) (m.Netlist.mem_size - 1);
      List.iter
        (fun (w : Netlist.write_port) ->
          pr "  always @(posedge clk) begin\n";
          pr "    if (%s) %s[%s] <= %s;\n" (n w.Netlist.w_enable)
            (sanitize m.Netlist.mem_name) (n w.Netlist.w_addr)
            (n w.Netlist.w_data);
          pr "  end\n")
        m.Netlist.mem_writes)
    c.mems;
  (* Register update processes. *)
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable; init } ->
          pr "  always @(posedge clk) begin\n";
          pr "    if (rst) %s <= %d'd%d;\n" (n nd.uid) nd.width
            (Bits.to_int init);
          (match enable with
          | Some e -> pr "    else if (%s) %s <= %s;\n" (n e) (n nd.uid) (n d)
          | None -> pr "    else %s <= %s;\n" (n nd.uid) (n d));
          pr "  end\n"
      | _ -> ())
    c.nodes;
  List.iter
    (fun (nm, u) -> pr "  assign %s = %s;\n" (sanitize nm) (n u))
    c.outputs;
  pr "endmodule\n";
  Buffer.contents buf

let port_names (c : Netlist.t) =
  (if has_regs c then [ "clk"; "rst" ] else [])
  @ List.map (fun (nm, _) -> sanitize nm) c.inputs
  @ List.map (fun (nm, _) -> sanitize nm) c.outputs
