let compute_stages ?(device = Device.xcvu9p) ~stages (c : Netlist.t) =
  if stages < 1 then invalid_arg "Pipeline: stages must be positive";
  if Array.exists Netlist.is_reg c.nodes || Array.length c.mems > 0 then
    invalid_arg "Pipeline.retime: circuit must be combinational";
  let n = Netlist.num_nodes c in
  let arrival = Array.make n 0. in
  let order = Netlist.comb_order c in
  let total = ref 0. in
  Array.iter
    (fun u ->
      let nd = Netlist.node c u in
      let d = Timing.node_delay device ~use_dsp:true c nd in
      let base =
        List.fold_left
          (fun acc op -> Float.max acc arrival.(op))
          0. (Netlist.operands nd)
      in
      arrival.(u) <- base +. d;
      if arrival.(u) > !total then total := arrival.(u))
    order;
  let budget = Float.max (!total /. float_of_int stages) 1e-9 in
  let stage = Array.make n 1 in
  Array.iter
    (fun u ->
      let nd = Netlist.node c u in
      let by_delay =
        let s = int_of_float (ceil (arrival.(u) /. budget -. 1e-9)) in
        min stages (max 1 s)
      in
      let by_deps =
        List.fold_left
          (fun acc op -> max acc stage.(op))
          1 (Netlist.operands nd)
      in
      stage.(u) <- max by_delay by_deps)
    order;
  stage

let stage_of_nodes ?device ~stages c = compute_stages ?device ~stages c

let retime ?device ~stages (c : Netlist.t) =
  let stage = compute_stages ?device ~stages c in
  let b = Builder.create (c.Netlist.circuit_name ^ "_pipelined") in
  let n = Netlist.num_nodes c in
  (* delayed.(u) holds the signal for node u as seen at its own stage; a
     consumer at a later stage requests extra delay registers. *)
  let raw = Array.make n None in
  let delayed : (int, Builder.s) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 2)
  in
  let is_const u =
    match (Netlist.node c u).kind with Netlist.Const _ -> true | _ -> false
  in
  let rec at_stage u s =
    let own = stage.(u) in
    if is_const u then Option.get raw.(u)
    else if s < own then failwith "Pipeline: consumer before producer"
    else if s = own then Option.get raw.(u)
    else
      match Hashtbl.find_opt delayed.(u) s with
      | Some sig_ -> sig_
      | None ->
          let prev = at_stage u (s - 1) in
          let r =
            Builder.reg_next b
              ~name:(Printf.sprintf "p%d_s%d" u s)
              prev
          in
          Hashtbl.replace delayed.(u) s r;
          r
  in
  let order = Netlist.comb_order c in
  Array.iter
    (fun u ->
      let nd = Netlist.node c u in
      let s = stage.(u) in
      let op x = at_stage x s in
      let sig_ =
        match nd.kind with
        | Netlist.Input name -> Builder.input b name nd.width
        | Netlist.Const k -> Builder.constb b k
        | Netlist.Unop (Netlist.Not, a) -> Builder.not_ b (op a)
        | Netlist.Unop (Netlist.Neg, a) -> Builder.neg b (op a)
        | Netlist.Binop (o, x, y) -> (
            let sx = op x and sy = op y in
            match o with
            | Netlist.Add -> Builder.add b sx sy
            | Netlist.Sub -> Builder.sub b sx sy
            | Netlist.Mul -> Builder.mul b sx sy
            | Netlist.And -> Builder.and_ b sx sy
            | Netlist.Or -> Builder.or_ b sx sy
            | Netlist.Xor -> Builder.xor_ b sx sy
            | Netlist.Shl -> Builder.shl b sx sy
            | Netlist.Shr -> Builder.shr b sx sy
            | Netlist.Sra -> Builder.sra b sx sy
            | Netlist.Eq -> Builder.eq b sx sy
            | Netlist.Ne -> Builder.ne b sx sy
            | Netlist.Lt sg -> Builder.lt b ~signed:(sg = Netlist.Signed) sx sy
            | Netlist.Le sg -> Builder.le b ~signed:(sg = Netlist.Signed) sx sy)
        | Netlist.Mux (sel, x, y) -> Builder.mux b (op sel) (op x) (op y)
        | Netlist.Slice (x, hi, lo) -> Builder.slice b (op x) ~hi ~lo
        | Netlist.Concat (x, y) -> Builder.concat b (op x) (op y)
        | Netlist.Uext x -> Builder.uext b (op x) nd.width
        | Netlist.Sext x -> Builder.sext b (op x) nd.width
        | Netlist.Reg _ | Netlist.Mem_read _ -> assert false
      in
      raw.(u) <- Some sig_)
    order;
  (* Outputs pass through the remaining ranks plus a final output rank. *)
  List.iter
    (fun (name, u) ->
      let tail = at_stage u stages in
      let final = Builder.reg_next b ~name:(name ^ "_q") tail in
      Builder.output b name final)
    c.Netlist.outputs;
  Builder.finalize b
