lib/hw/verilog.ml: Array Bits Buffer Hashtbl List Netlist Printf String
