lib/hw/interp.ml: Array Bits Hashtbl List Netlist
