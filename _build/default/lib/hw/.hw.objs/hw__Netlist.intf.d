lib/hw/netlist.mli: Bits Format
