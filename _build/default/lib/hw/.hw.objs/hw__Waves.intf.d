lib/hw/waves.mli: Sim
