lib/hw/compile.mli: Netlist
