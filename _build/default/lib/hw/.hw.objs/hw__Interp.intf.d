lib/hw/interp.mli: Netlist
