lib/hw/device.ml: List
