lib/hw/pipeline.mli: Device Netlist
