lib/hw/techmap.ml: Array Bits Device List Netlist
