lib/hw/pipeline.ml: Array Builder Device Float Hashtbl List Netlist Option Printf Timing
