lib/hw/instantiate.ml: Array Bits Builder List Netlist Option Printf
