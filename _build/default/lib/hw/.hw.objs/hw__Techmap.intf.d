lib/hw/techmap.mli: Device Netlist
