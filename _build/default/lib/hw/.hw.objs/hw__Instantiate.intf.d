lib/hw/instantiate.mli: Builder Netlist
