lib/hw/sim.mli: Netlist
