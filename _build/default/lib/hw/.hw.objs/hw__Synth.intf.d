lib/hw/synth.mli: Device Format Netlist
