lib/hw/builder.ml: Array Bits Hashtbl List Netlist Option Printf
