lib/hw/netlist.ml: Array Bits Format Hashtbl List Option Printf Queue String
