lib/hw/bits.ml: Format Int Printf
