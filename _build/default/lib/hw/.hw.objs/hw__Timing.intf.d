lib/hw/timing.mli: Device Netlist
