lib/hw/builder.mli: Bits Netlist
