lib/hw/synth.ml: Device Format List Netlist Printf Techmap Timing
