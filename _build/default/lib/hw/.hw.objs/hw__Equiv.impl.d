lib/hw/equiv.ml: Format List Netlist Random Sim
