lib/hw/equiv.ml: Array Compile Format Interp List Netlist Printf Random Sim
