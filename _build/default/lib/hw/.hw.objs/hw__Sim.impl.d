lib/hw/sim.ml: Array Bits Hashtbl List Netlist
