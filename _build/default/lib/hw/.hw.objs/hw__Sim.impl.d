lib/hw/sim.ml: Compile
