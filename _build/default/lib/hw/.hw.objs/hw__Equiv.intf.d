lib/hw/equiv.mli: Format Netlist
