lib/hw/compile.ml: Array Bits Bytes Hashtbl Interp List Netlist Option
