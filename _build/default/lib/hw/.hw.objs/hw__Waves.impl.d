lib/hw/waves.ml: Array Buffer Char Hashtbl List Netlist Printf Sim String
