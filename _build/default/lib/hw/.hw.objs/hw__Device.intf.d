lib/hw/device.mli:
