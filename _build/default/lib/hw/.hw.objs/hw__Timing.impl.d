lib/hw/timing.ml: Array Device Float Format List Netlist Techmap
