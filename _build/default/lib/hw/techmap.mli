(** Technology mapping cost model.

    Maps each netlist node onto FPGA primitives (LUT6 fabric, carry chains,
    flip-flops, DSP slices) and returns per-node and per-circuit resource
    counts.  Multiplications by constants are recognized and costed as
    canonical-signed-digit shift-add networks, the way logic synthesis
    implements them; [use_dsp = false] models Vivado's [maxdsp=0] setting,
    which the paper uses to obtain the normalized area
    [A = N*_LUT + N*_FF]. *)

type cost = { luts : int; ffs : int; dsps : int }

val zero_cost : cost
val ( ++ ) : cost -> cost -> cost

val node_cost : Device.t -> use_dsp:bool -> Netlist.t -> Netlist.node -> cost
(** Resources consumed by one node. *)

val circuit_cost : Device.t -> use_dsp:bool -> Netlist.t -> cost
(** Sum over all nodes. *)

val io_bits : Netlist.t -> int
(** Number of device I/O pins the circuit needs: the sum of all port widths
    plus clock and reset. *)

val csd_adders : int -> int
(** Number of adders in the canonical-signed-digit shift-add network for
    multiplication by the given (signed) constant: one fewer than the number
    of non-zero CSD digits, at least 0. *)

val const_mul_operand : Netlist.t -> Netlist.node -> int option
(** If the node is a multiplication with a constant operand, the constant's
    signed value. *)

val const_value : Netlist.t -> Netlist.node -> int option
(** The node's constant value, chasing through sign/zero extensions. *)
