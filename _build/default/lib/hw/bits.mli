(** Fixed-width two's-complement bit vectors.

    A value of type {!t} is a bit vector of a given [width] (1 to 62 bits).
    The payload is stored as a non-negative OCaml [int] whose bits above
    [width] are zero.  Arithmetic wraps modulo [2^width]; signed views
    interpret the top bit as the sign. *)

type t = private { value : int; width : int }

val max_width : int
(** Largest supported width (62, so every vector fits an OCaml [int]). *)

val create : width:int -> int -> t
(** [create ~width v] masks [v] to [width] bits.  Negative [v] is taken as
    two's complement.  @raise Invalid_argument on widths outside [1..62]. *)

val zero : int -> t
(** [zero width] is the all-zeros vector. *)

val one : int -> t
(** [one width] is the vector with value 1. *)

val ones : int -> t
(** [ones width] is the all-ones vector. *)

val width : t -> int
val to_int : t -> int
(** Unsigned value in [0, 2^width). *)

val to_signed_int : t -> int
(** Signed (two's-complement) value in [-2^(width-1), 2^(width-1)). *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB is bit 0). *)

val msb : t -> bool

(** {1 Arithmetic} — operands must share a width; results keep it. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** {1 Bitwise} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** {1 Shifts} — shift amount from the unsigned value of the second operand. *)

val shift_left : t -> t -> t
val shift_right_logical : t -> t -> t
val shift_right_arith : t -> t -> t

(** {1 Comparisons} — results are 1-bit vectors. *)

val eq : t -> t -> t
val ne : t -> t -> t
val lt : signed:bool -> t -> t -> t
val le : signed:bool -> t -> t -> t

(** {1 Structure} *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] extracts bits [hi..lo] as a vector of width
    [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] has [hi] in the upper bits. *)

val uext : t -> int -> t
(** [uext v w] zero-extends (or truncates) to width [w]. *)

val sext : t -> int -> t
(** [sext v w] sign-extends (or truncates) to width [w]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints as [width'dvalue] (e.g. [8'd255]). *)

val to_string : t -> string

val width_for_signed_range : int -> int -> int
(** [width_for_signed_range lo hi] is the smallest width whose signed range
    contains both bounds. *)
