type signal = { uid : Netlist.uid; vcd_id : string; vname : string; vwidth : int }

type t = {
  sim : Sim.t;
  signals : signal list;
  mutable time : int;
  last : (Netlist.uid, int) Hashtbl.t;
  changes : Buffer.t;
}

let ident_of k =
  (* VCD identifiers: printable ASCII 33..126, shortest first. *)
  let base = 94 and lo = 33 in
  let rec go k acc =
    let acc = String.make 1 (Char.chr (lo + (k mod base))) ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let create ?(all_nodes = false) sim =
  let c = Sim.circuit sim in
  let named =
    Array.to_list c.Netlist.nodes
    |> List.filter_map (fun (nd : Netlist.node) ->
           match nd.Netlist.name with
           | Some nm -> Some (nd.Netlist.uid, nm, nd.Netlist.width)
           | None ->
               if all_nodes then
                 Some (nd.Netlist.uid, Printf.sprintf "n%d" nd.Netlist.uid, nd.Netlist.width)
               else None)
  in
  let outputs =
    List.map
      (fun (nm, u) -> (u, nm, (Netlist.node c u).Netlist.width))
      c.Netlist.outputs
  in
  let seen = Hashtbl.create 64 in
  let signals =
    List.filteri
      (fun _ (_, nm, _) ->
        if Hashtbl.mem seen nm then false
        else begin
          Hashtbl.replace seen nm ();
          true
        end)
      (named @ outputs)
    |> List.mapi (fun i (uid, vname, vwidth) ->
           { uid; vcd_id = ident_of i; vname; vwidth })
  in
  {
    sim;
    signals;
    time = 0;
    last = Hashtbl.create (List.length signals);
    changes = Buffer.create 4096;
  }

let record t =
  Buffer.add_string t.changes (Printf.sprintf "#%d\n" t.time);
  List.iter
    (fun s ->
      let v = Sim.peek t.sim s.uid in
      let changed =
        match Hashtbl.find_opt t.last s.uid with
        | Some old -> old <> v
        | None -> true
      in
      if changed then begin
        Hashtbl.replace t.last s.uid v;
        if s.vwidth = 1 then
          Buffer.add_string t.changes (Printf.sprintf "%d%s\n" v s.vcd_id)
        else begin
          Buffer.add_char t.changes 'b';
          for i = s.vwidth - 1 downto 0 do
            Buffer.add_char t.changes
              (if v land (1 lsl i) <> 0 then '1' else '0')
          done;
          Buffer.add_char t.changes ' ';
          Buffer.add_string t.changes s.vcd_id;
          Buffer.add_char t.changes '\n'
        end
      end)
    t.signals

let step t =
  if t.time = 0 then record t;
  Sim.step t.sim;
  t.time <- t.time + 1;
  record t

let run t n =
  for _ = 1 to n do
    step t
  done

let to_string t =
  let buf = Buffer.create (Buffer.length t.changes + 1024) in
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n"
       (Sim.circuit t.sim).Netlist.circuit_name);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.vwidth s.vcd_id s.vname))
    t.signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_buffer buf t.changes;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
