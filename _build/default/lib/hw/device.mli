(** FPGA device model.

    Resource capacities follow the paper's target part (Xilinx Virtex
    UltraScale+ XCVU9P-FLGB2104-2-E); the delay/cost entries are a
    calibrated UltraScale+-style model used by {!Techmap} and {!Timing}. *)

type t = {
  device_name : string;
  lut_capacity : int;
  ff_capacity : int;
  dsp_capacity : int;
  io_capacity : int;
  (* Timing model, nanoseconds. *)
  lut_delay : float;       (** one LUT level including local routing *)
  carry_per_bit : float;   (** incremental carry-chain delay per bit *)
  carry_base : float;      (** carry-chain entry/exit cost *)
  dsp_delay : float;       (** combinational multiplier through a DSP slice *)
  clk_to_q : float;
  setup : float;
  (* DSP eligibility. *)
  dsp_a_width : int;       (** maximum A-port width (27 on DSP48E2) *)
  dsp_b_width : int;       (** maximum B-port width (18 on DSP48E2) *)
}

val xcvu9p : t
(** The paper's device: 1,182,240 LUTs; 2,364,480 FFs; 6,840 DSPs; 702 I/O. *)

val utilization : t -> luts:int -> ffs:int -> dsps:int -> float
(** Fraction of the dominant resource consumed, in [0, 1+]. *)
