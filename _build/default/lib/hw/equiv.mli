(** Random-simulation equivalence checking.

    Drives two circuits with identical pseudo-random input streams for a
    number of clock cycles and compares every output each cycle.  This is
    the workhorse behind the emit/parse round-trip tests and the
    transformation-validation tests (pipelining, stamping, option
    sweeps). *)

type result = Equivalent | Mismatch of { cycle : int; port : string; a : int; b : int }

val check :
  ?cycles:int -> ?seed:int -> ?settle:int -> Netlist.t -> Netlist.t -> result
(** The circuits must have identical input and output port names/widths
    ([settle] initial cycles are driven but not compared — use it for
    circuits whose pipeline depths differ).
    @raise Invalid_argument on port mismatches. *)

val pp_result : Format.formatter -> result -> unit
