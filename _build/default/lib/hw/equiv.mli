(** Random-simulation equivalence checking.

    Drives two circuits with identical pseudo-random input streams for a
    number of clock cycles and compares every output each cycle.  This is
    the workhorse behind the emit/parse round-trip tests and the
    transformation-validation tests (pipelining, stamping, option
    sweeps). *)

type result = Equivalent | Mismatch of { cycle : int; port : string; a : int; b : int }

val check :
  ?cycles:int -> ?seed:int -> ?settle:int -> Netlist.t -> Netlist.t -> result
(** The circuits must have identical input and output port names/widths
    ([settle] initial cycles are driven but not compared — use it for
    circuits whose pipeline depths differ).
    @raise Invalid_argument on port mismatches. *)

val crosscheck : ?cycles:int -> ?seed:int -> Netlist.t -> result
(** Drives ONE circuit through both simulation engines — the reference
    interpreter ({!Interp}) and the compiled engine ({!Compile}, behind
    {!Sim}) — with identical pseudo-random stimulus (including all-ones and
    sign-bit extremes at every width).  Outputs and register state are
    compared every cycle; at the end every node value (exercising the
    compiled engine's dead-node fallback) and every memory word is
    compared.  Mismatch ports are labelled ["reg n<uid>"], ["n<uid>"] or
    ["<mem>[<addr>]"] for non-output state. *)

val pp_result : Format.formatter -> result -> unit
