type t = { value : int; width : int }

let max_width = 62

(* For the top width the mask is all 62 low bits (= [max_int] on a 64-bit
   host, whose OCaml ints have 63 bits).  The old [-1 lsr 2] cut the mask to
   61 bits and silently truncated 62-bit values. *)
let mask width = if width >= 62 then max_int else (1 lsl width) - 1

let create ~width v =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bits.create: width %d out of [1..%d]" width max_width);
  { value = v land mask width; width }

let zero width = create ~width 0
let one width = create ~width 1
let ones width = create ~width (-1)
let width t = t.width
let to_int t = t.value

let to_signed_int t =
  (* Valid for every width up to 62: at width 62, [1 lsl 62] is [min_int]
     and the subtraction wraps modulo 2^63 to the right negative value. *)
  if t.value land (1 lsl (t.width - 1)) <> 0 then t.value - (1 lsl t.width)
  else t.value

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.bit: index out of range";
  t.value land (1 lsl i) <> 0

let msb t = bit t (t.width - 1)

let check_same a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits: width mismatch (%d vs %d)" a.width b.width)

let add a b = check_same a b; create ~width:a.width (a.value + b.value)
let sub a b = check_same a b; create ~width:a.width (a.value - b.value)

let mul a b =
  check_same a b;
  (* Avoid overflow of the OCaml int product for wide operands by working
     on the low bits only: the result is taken modulo [2^width] anyway. *)
  if a.width <= 31 then create ~width:a.width (a.value * b.value)
  else begin
    let m = mask a.width in
    let lo_a = a.value land 0xFFFF and hi_a = a.value lsr 16 in
    let lo = lo_a * b.value in
    let hi = (hi_a * b.value) lsl 16 in
    create ~width:a.width ((lo + hi) land m)
  end

let neg a = create ~width:a.width (-a.value)
let lognot a = create ~width:a.width (lnot a.value)
let logand a b = check_same a b; create ~width:a.width (a.value land b.value)
let logor a b = check_same a b; create ~width:a.width (a.value lor b.value)
let logxor a b = check_same a b; create ~width:a.width (a.value lxor b.value)

let shift_left a n =
  let s = n.value in
  if s >= a.width then zero a.width else create ~width:a.width (a.value lsl s)

let shift_right_logical a n =
  let s = n.value in
  if s >= a.width then zero a.width else create ~width:a.width (a.value lsr s)

let shift_right_arith a n =
  let s = min n.value (a.width - 1) in
  create ~width:a.width (to_signed_int a asr s)

let of_bool b = if b then one 1 else zero 1
let eq a b = check_same a b; of_bool (a.value = b.value)
let ne a b = check_same a b; of_bool (a.value <> b.value)

let lt ~signed a b =
  check_same a b;
  if signed then of_bool (to_signed_int a < to_signed_int b)
  else of_bool (a.value < b.value)

let le ~signed a b =
  check_same a b;
  if signed then of_bool (to_signed_int a <= to_signed_int b)
  else of_bool (a.value <= b.value)

let slice t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg (Printf.sprintf "Bits.slice: [%d:%d] of width %d" hi lo t.width);
  create ~width:(hi - lo + 1) (t.value lsr lo)

let concat hi lo =
  let width = hi.width + lo.width in
  if width > max_width then invalid_arg "Bits.concat: result too wide";
  create ~width ((hi.value lsl lo.width) lor lo.value)

let uext t w = create ~width:w t.value
let sext t w = create ~width:w (to_signed_int t)
let equal a b = a.width = b.width && a.value = b.value

let compare a b =
  match Int.compare a.width b.width with
  | 0 -> Int.compare a.value b.value
  | c -> c

let pp ppf t = Format.fprintf ppf "%d'd%d" t.width t.value
let to_string t = Format.asprintf "%a" pp t

let width_for_signed_range lo hi =
  let rec fit w =
    if w >= max_width then max_width
    else
      let half = 1 lsl (w - 1) in
      if lo >= -half && hi < half then w else fit (w + 1)
  in
  fit 1
