(** Imperative construction of {!Netlist} circuits.

    A builder accumulates nodes; pure (combinational) nodes are hash-consed,
    so structurally identical expressions share hardware.  Registers are
    created first and their data input connected later, which is how
    feedback loops are described:

    {[
      let b = Builder.create "counter" in
      let q = Builder.reg b ~width:8 "q" in
      Builder.connect b q (Builder.add b q (Builder.const b ~width:8 1));
      Builder.output b "count" q;
      let circuit = Builder.finalize b
    ]} *)

type t
type s
(** A signal: a handle to a node, carrying its width. *)

val create : string -> t
val width : s -> int
val uid : s -> Netlist.uid

(** {1 Sources} *)

val input : t -> string -> int -> s
val const : t -> width:int -> int -> s
val constb : t -> Bits.t -> s
val zero : t -> int -> s
val one : t -> int -> s

(** {1 Operators} — operand widths must match (see {!Netlist}). *)

val add : t -> s -> s -> s
val sub : t -> s -> s -> s
val mul : t -> s -> s -> s
val neg : t -> s -> s
val not_ : t -> s -> s
val and_ : t -> s -> s -> s
val or_ : t -> s -> s -> s
val xor_ : t -> s -> s -> s

val shl : t -> s -> s -> s
val shr : t -> s -> s -> s
val sra : t -> s -> s -> s

val shl_const : t -> s -> int -> s
(** Shift by a constant amount, implemented as slice+concat (free wiring). *)

val shr_const : t -> s -> int -> s
val sra_const : t -> s -> int -> s

val eq : t -> s -> s -> s
val ne : t -> s -> s -> s
val lt : t -> signed:bool -> s -> s -> s
val le : t -> signed:bool -> s -> s -> s
val gt : t -> signed:bool -> s -> s -> s
val ge : t -> signed:bool -> s -> s -> s

val mux : t -> s -> s -> s -> s
(** [mux b sel t f]. *)

val mux_list : t -> s -> s list -> s
(** [mux_list b sel cases] selects [cases.(sel)] via a balanced tree; the
    list length need not be a power of two (out-of-range selects return the
    last case). *)

val slice : t -> s -> hi:int -> lo:int -> s
val bit : t -> s -> int -> s
val concat : t -> s -> s -> s
(** [concat b hi lo]. *)

val concat_list : t -> s list -> s
(** Concatenates with the head as the most significant part. *)

val uext : t -> s -> int -> s
(** Zero-extend to the given width; truncates if narrower (via slice). *)

val sext : t -> s -> int -> s

(** {1 State} *)

val reg : t -> ?enable:s -> ?init:int -> width:int -> string -> s
(** Declares a register and returns its output; {!connect} its input later.
    @raise Failure at {!finalize} time if a register was never connected. *)

val connect : t -> s -> s -> unit
(** [connect b q d] sets register [q]'s data input to [d]. *)

val reg_next : t -> ?enable:s -> ?init:int -> ?name:string -> s -> s
(** One-liner for a pipeline register whose input is already known. *)

(** {1 Memories} *)

type mem_handle

val mem : t -> string -> size:int -> width:int -> mem_handle
(** Declares a word-addressed memory (LUTRAM-style: asynchronous reads,
    clocked writes). *)

val mem_addr_width : mem_handle -> int

val mem_read : t -> mem_handle -> s -> s
(** Asynchronous read; the address must have exactly the memory's address
    width. *)

val mem_write : t -> mem_handle -> enable:s -> addr:s -> data:s -> unit
(** Adds a write port (applied on the clock edge when [enable] is high).
    Simultaneously enabled writes must target distinct addresses. *)

(** {1 Naming and completion} *)

val output : t -> string -> s -> unit
val name : t -> s -> string -> s
(** Attaches a debug/emission name to the node; returns the same signal. *)

val finalize : t -> Netlist.t
(** Validates and returns the finished circuit. *)
