(** Stamping one circuit into another (module instantiation).

    Copies every node of the instanced circuit into the target builder,
    substituting the given signals for its input ports.  Registers are
    recreated (optionally gated by [enable], on top of their own enables),
    so stamping a sequential circuit yields an independent instance. *)

val stamp :
  ?enable:Builder.s ->
  Builder.t ->
  Netlist.t ->
  inputs:(string * Builder.s) list ->
  (string * Builder.s) list
(** Returns the instance's outputs.  @raise Failure on a missing or
    width-mismatched input binding. *)
