(** Verilog-2001 emission of {!Netlist} circuits.

    Produces a flat synthesizable module: one [assign] per combinational
    node, one [always @(posedge clk)] block per register.  Circuits with at
    least one register get [clk] and [rst] ports; [rst] is a synchronous
    reset loading each register's [init] value. *)

val emit : Netlist.t -> string

val port_names : Netlist.t -> string list
(** All port names of the emitted module, in order (clk/rst first when
    present). *)
