type result =
  | Equivalent
  | Mismatch of { cycle : int; port : string; a : int; b : int }

let check ?(cycles = 64) ?(seed = 42) ?(settle = 0) (ca : Netlist.t)
    (cb : Netlist.t) =
  let ports c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.inputs
  in
  if ports ca <> ports cb then
    invalid_arg "Equiv.check: input ports differ";
  let outs c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.outputs
  in
  if outs ca <> outs cb then invalid_arg "Equiv.check: output ports differ";
  let sa = Sim.create ca and sb = Sim.create cb in
  let rng = Random.State.make [| seed |] in
  let result = ref Equivalent in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter
         (fun (nm, w) ->
           let v = Random.State.int rng (1 lsl min w 30) in
           Sim.set sa nm v;
           Sim.set sb nm v)
         (ports ca);
       if cycle >= settle then
         List.iter
           (fun (nm, _) ->
             let a = Sim.get sa nm and b = Sim.get sb nm in
             if a <> b then begin
               result := Mismatch { cycle; port = nm; a; b };
               raise Exit
             end)
           (outs ca);
       Sim.step sa;
       Sim.step sb
     done
   with Exit -> ());
  !result

(* Random cross-check of the two simulation engines on ONE circuit: the
   retained reference interpreter ([Interp]) against the compiled engine
   ([Compile], which backs [Sim]).  Outputs and register state are compared
   every cycle, every node (including logic the compiled engine eliminated
   as dead) and all memory words at the end. *)
let crosscheck ?(cycles = 1000) ?(seed = 7) (c : Netlist.t) =
  let si = Interp.create c and sc = Compile.create c in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let ins =
    List.map
      (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width))
      c.Netlist.inputs
  in
  let outs = List.map fst c.Netlist.outputs in
  let regs =
    Array.to_list c.Netlist.nodes
    |> List.filter Netlist.is_reg
    |> List.map (fun (nd : Netlist.node) -> nd.Netlist.uid)
  in
  let result = ref Equivalent in
  let fail cycle port a b =
    result := Mismatch { cycle; port; a; b };
    raise Exit
  in
  let wide_random () =
    (* 62 random bits, with occasional all-ones / sign-bit extremes. *)
    match Random.State.int rng 8 with
    | 0 -> -1
    | 1 -> 1 lsl 61
    | _ ->
        Random.State.bits rng
        lor (Random.State.bits rng lsl 30)
        lor (Random.State.bits rng lsl 60)
  in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter
         (fun (nm, _) ->
           let v = wide_random () in
           Interp.set si nm v;
           Compile.set sc nm v)
         ins;
       List.iter
         (fun nm ->
           let a = Interp.get si nm and b = Compile.get sc nm in
           if a <> b then fail cycle nm a b)
         outs;
       List.iter
         (fun u ->
           let a = Interp.peek si u and b = Compile.peek sc u in
           if a <> b then fail cycle (Printf.sprintf "reg n%d" u) a b)
         regs;
       Interp.step si;
       Compile.step sc
     done;
     (* Final architectural and combinational state, node by node — this
        exercises the compiled engine's on-demand path for dead nodes. *)
     for u = 0 to Netlist.num_nodes c - 1 do
       let a = Interp.peek si u and b = Compile.peek sc u in
       if a <> b then fail cycles (Printf.sprintf "n%d" u) a b
     done;
     Array.iteri
       (fun mi (m : Netlist.mem) ->
         for a = 0 to m.Netlist.mem_size - 1 do
           let x = Interp.mem_word si mi a and y = Compile.mem_word sc mi a in
           if x <> y then
             fail cycles (Printf.sprintf "%s[%d]" m.Netlist.mem_name a) x y
         done)
       c.Netlist.mems
   with Exit -> ());
  !result

let pp_result ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Mismatch { cycle; port; a; b } ->
      Format.fprintf ppf "mismatch at cycle %d on %s: %d vs %d" cycle port a b
