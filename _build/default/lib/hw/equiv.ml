type result =
  | Equivalent
  | Mismatch of { cycle : int; port : string; a : int; b : int }

let check ?(cycles = 64) ?(seed = 42) ?(settle = 0) (ca : Netlist.t)
    (cb : Netlist.t) =
  let ports c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.inputs
  in
  if ports ca <> ports cb then
    invalid_arg "Equiv.check: input ports differ";
  let outs c =
    List.map (fun (nm, u) -> (nm, (Netlist.node c u).Netlist.width)) c.Netlist.outputs
  in
  if outs ca <> outs cb then invalid_arg "Equiv.check: output ports differ";
  let sa = Sim.create ca and sb = Sim.create cb in
  let rng = Random.State.make [| seed |] in
  let result = ref Equivalent in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter
         (fun (nm, w) ->
           let v = Random.State.int rng (1 lsl min w 30) in
           Sim.set sa nm v;
           Sim.set sb nm v)
         (ports ca);
       if cycle >= settle then
         List.iter
           (fun (nm, _) ->
             let a = Sim.get sa nm and b = Sim.get sb nm in
             if a <> b then begin
               result := Mismatch { cycle; port = nm; a; b };
               raise Exit
             end)
           (outs ca);
       Sim.step sa;
       Sim.step sb
     done
   with Exit -> ());
  !result

let pp_result ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Mismatch { cycle; port; a; b } ->
      Format.fprintf ppf "mismatch at cycle %d on %s: %d vs %d" cycle port a b
