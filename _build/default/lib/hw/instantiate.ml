let stamp ?enable b (inst : Netlist.t) ~inputs =
  let n = Netlist.num_nodes inst in
  let map = Array.make n None in
  let mem_map =
    Array.map
      (fun (m : Netlist.mem) ->
        Builder.mem b (m.Netlist.mem_name ^ "_i") ~size:m.Netlist.mem_size
          ~width:m.Netlist.mem_width)
      inst.mems
  in
  let get u =
    match map.(u) with
    | Some s -> s
    | None -> failwith "Instantiate.stamp: node mapped out of order"
  in
  (* Registers first so combinational feedback through them resolves. *)
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { init; enable = en; _ } ->
          ignore en;
          let name =
            Option.value nd.name ~default:(Printf.sprintf "i%d" nd.uid)
          in
          map.(nd.uid) <-
            Some (Builder.reg b ~init:(Bits.to_int init) ~width:nd.width name)
      | _ -> ())
    inst.nodes;
  let order = Netlist.comb_order inst in
  Array.iter
    (fun u ->
      let nd = Netlist.node inst u in
      match nd.kind with
      | Netlist.Reg _ -> ()
      | Netlist.Input name ->
          let s =
            match List.assoc_opt name inputs with
            | Some s -> s
            | None ->
                failwith
                  (Printf.sprintf "Instantiate.stamp: input %s not bound" name)
          in
          if Builder.width s <> nd.width then
            failwith
              (Printf.sprintf
                 "Instantiate.stamp: input %s width mismatch (%d vs %d)" name
                 (Builder.width s) nd.width);
          map.(u) <- Some s
      | Netlist.Const k -> map.(u) <- Some (Builder.constb b k)
      | Netlist.Unop (Netlist.Not, a) -> map.(u) <- Some (Builder.not_ b (get a))
      | Netlist.Unop (Netlist.Neg, a) -> map.(u) <- Some (Builder.neg b (get a))
      | Netlist.Binop (op, x, y) ->
          let sx = get x and sy = get y in
          let s =
            match op with
            | Netlist.Add -> Builder.add b sx sy
            | Netlist.Sub -> Builder.sub b sx sy
            | Netlist.Mul -> Builder.mul b sx sy
            | Netlist.And -> Builder.and_ b sx sy
            | Netlist.Or -> Builder.or_ b sx sy
            | Netlist.Xor -> Builder.xor_ b sx sy
            | Netlist.Shl -> Builder.shl b sx sy
            | Netlist.Shr -> Builder.shr b sx sy
            | Netlist.Sra -> Builder.sra b sx sy
            | Netlist.Eq -> Builder.eq b sx sy
            | Netlist.Ne -> Builder.ne b sx sy
            | Netlist.Lt sg -> Builder.lt b ~signed:(sg = Netlist.Signed) sx sy
            | Netlist.Le sg -> Builder.le b ~signed:(sg = Netlist.Signed) sx sy
          in
          map.(u) <- Some s
      | Netlist.Mux (s, x, y) ->
          map.(u) <- Some (Builder.mux b (get s) (get x) (get y))
      | Netlist.Slice (x, hi, lo) ->
          map.(u) <- Some (Builder.slice b (get x) ~hi ~lo)
      | Netlist.Concat (x, y) -> map.(u) <- Some (Builder.concat b (get x) (get y))
      | Netlist.Uext x -> map.(u) <- Some (Builder.uext b (get x) nd.width)
      | Netlist.Sext x -> map.(u) <- Some (Builder.sext b (get x) nd.width)
      | Netlist.Mem_read (m, a) ->
          map.(u) <- Some (Builder.mem_read b mem_map.(m) (get a)))
    order;
  Array.iteri
    (fun mi (m : Netlist.mem) ->
      List.iter
        (fun (w : Netlist.write_port) ->
          let en =
            match enable with
            | None -> get w.Netlist.w_enable
            | Some e -> Builder.and_ b e (get w.Netlist.w_enable)
          in
          Builder.mem_write b mem_map.(mi) ~enable:en ~addr:(get w.Netlist.w_addr)
            ~data:(get w.Netlist.w_data))
        m.Netlist.mem_writes)
    inst.mems;
  (* Connect the registers. *)
  Array.iter
    (fun (nd : Netlist.node) ->
      match nd.kind with
      | Netlist.Reg { d; enable = en; _ } ->
          let q = get nd.uid in
          let inner_en = Option.map get en in
          let eff_en =
            match (enable, inner_en) with
            | None, e | e, None -> e
            | Some a, Some b' -> Some (Builder.and_ b a b')
          in
          (match eff_en with
          | None -> Builder.connect b q (get d)
          | Some e -> Builder.connect b q (Builder.mux b e (get d) q))
      | _ -> ())
    inst.nodes;
  List.map (fun (name, u) -> (name, get u)) inst.outputs
