type s = { suid : Netlist.uid; swidth : int }

type pending = {
  mutable nkind : Netlist.kind;
  mutable nwidth : int;
  mutable nname : string option;
}

type mem_handle = { mid : int; msize : int; mwidth : int }

type t = {
  cname : string;
  mutable cells : pending array;
  mutable count : int;
  cache : (Netlist.kind * int, s) Hashtbl.t;
  mutable ins : (string * Netlist.uid) list;
  mutable outs : (string * Netlist.uid) list;
  mutable unconnected : (Netlist.uid * string) list;
  mutable mems : (string * int * int) list;          (* reversed: name, size, width *)
  mutable mem_writes : (int * Netlist.write_port) list;
}

let create cname =
  {
    cname;
    cells = Array.make 64 { nkind = Input "?"; nwidth = 1; nname = None };
    count = 0;
    cache = Hashtbl.create 256;
    ins = [];
    outs = [];
    unconnected = [];
    mems = [];
    mem_writes = [];
  }

let width s = s.swidth
let uid s = s.suid

let raw_add t kind width nm =
  if t.count = Array.length t.cells then begin
    let bigger = Array.make (2 * t.count) t.cells.(0) in
    Array.blit t.cells 0 bigger 0 t.count;
    t.cells <- bigger
  end;
  t.cells.(t.count) <- { nkind = kind; nwidth = width; nname = nm };
  t.count <- t.count + 1;
  { suid = t.count - 1; swidth = width }

let const_of t s =
  match t.cells.(s.suid).nkind with
  | Netlist.Const b -> Some b
  | _ -> None

(* Pure nodes are hash-consed: the kind (which embeds operand uids) is the
   structural key, so identical subexpressions map to one node. *)
let pure t kind width =
  match Hashtbl.find_opt t.cache (kind, width) with
  | Some s -> s
  | None ->
      let s = raw_add t kind width None in
      Hashtbl.replace t.cache (kind, width) s;
      s

let input t name w =
  let s = raw_add t (Netlist.Input name) w (Some name) in
  t.ins <- t.ins @ [ (name, s.suid) ];
  s

let constb t b = pure t (Netlist.Const b) (Bits.width b)
let const t ~width v = constb t (Bits.create ~width v)
let zero t w = const t ~width:w 0
let one t w = const t ~width:w 1

let check_same fn a b =
  if a.swidth <> b.swidth then
    failwith
      (Printf.sprintf "Builder.%s: width mismatch (%d vs %d)" fn a.swidth
         b.swidth)

let eval_binop op x y =
  match op with
  | Netlist.Add -> Bits.add x y
  | Netlist.Sub -> Bits.sub x y
  | Netlist.Mul -> Bits.mul x y
  | Netlist.And -> Bits.logand x y
  | Netlist.Or -> Bits.logor x y
  | Netlist.Xor -> Bits.logxor x y
  | Netlist.Shl -> Bits.shift_left x y
  | Netlist.Shr -> Bits.shift_right_logical x y
  | Netlist.Sra -> Bits.shift_right_arith x y
  | Netlist.Eq -> Bits.eq x y
  | Netlist.Ne -> Bits.ne x y
  | Netlist.Lt s -> Bits.lt ~signed:(s = Netlist.Signed) x y
  | Netlist.Le s -> Bits.le ~signed:(s = Netlist.Signed) x y

let binop t op a b =
  check_same (Netlist.binop_name op) a b;
  match (const_of t a, const_of t b) with
  | Some x, Some y -> constb t (eval_binop op x y)
  | _ -> pure t (Netlist.Binop (op, a.suid, b.suid)) a.swidth

let cmp t op a b =
  check_same (Netlist.binop_name op) a b;
  match (const_of t a, const_of t b) with
  | Some x, Some y -> constb t (eval_binop op x y)
  | _ -> pure t (Netlist.Binop (op, a.suid, b.suid)) 1

let add t a b = binop t Netlist.Add a b
let sub t a b = binop t Netlist.Sub a b
let mul t a b = binop t Netlist.Mul a b
let neg t a =
  match const_of t a with
  | Some x -> constb t (Bits.neg x)
  | None -> pure t (Netlist.Unop (Netlist.Neg, a.suid)) a.swidth

let not_ t a =
  match const_of t a with
  | Some x -> constb t (Bits.lognot x)
  | None -> pure t (Netlist.Unop (Netlist.Not, a.suid)) a.swidth
let and_ t a b = binop t Netlist.And a b
let or_ t a b = binop t Netlist.Or a b
let xor_ t a b = binop t Netlist.Xor a b

(* Shift amounts may have any width (their unsigned value is used). *)
let shift_op t op a n =
  match (const_of t a, const_of t n) with
  | Some x, Some y -> constb t (eval_binop op x (Bits.uext y (Bits.width x)))
  | _ -> pure t (Netlist.Binop (op, a.suid, n.suid)) a.swidth

let shl t a n = shift_op t Netlist.Shl a n
let shr t a n = shift_op t Netlist.Shr a n
let sra t a n = shift_op t Netlist.Sra a n

let slice t a ~hi ~lo =
  if hi = a.swidth - 1 && lo = 0 then a
  else
    match const_of t a with
    | Some x -> constb t (Bits.slice x ~hi ~lo)
    | None -> pure t (Netlist.Slice (a.suid, hi, lo)) (hi - lo + 1)

let bit t a i = slice t a ~hi:i ~lo:i

let concat t hi lo = pure t (Netlist.Concat (hi.suid, lo.suid)) (hi.swidth + lo.swidth)

let concat_list t = function
  | [] -> invalid_arg "Builder.concat_list: empty"
  | first :: rest -> List.fold_left (fun acc s -> concat t acc s) first rest

let uext t a w =
  if w = a.swidth then a
  else if w < a.swidth then slice t a ~hi:(w - 1) ~lo:0
  else
    match const_of t a with
    | Some x -> constb t (Bits.uext x w)
    | None -> pure t (Netlist.Uext a.suid) w

let sext t a w =
  if w = a.swidth then a
  else if w < a.swidth then slice t a ~hi:(w - 1) ~lo:0
  else
    match const_of t a with
    | Some x -> constb t (Bits.sext x w)
    | None -> pure t (Netlist.Sext a.suid) w

let shl_const t a n =
  if n = 0 then a
  else if n >= a.swidth then zero t a.swidth
  else concat t (slice t a ~hi:(a.swidth - 1 - n) ~lo:0) (zero t n)

let shr_const t a n =
  if n = 0 then a
  else if n >= a.swidth then zero t a.swidth
  else uext t (slice t a ~hi:(a.swidth - 1) ~lo:n) a.swidth

let sra_const t a n =
  if n = 0 then a
  else
    let n = min n (a.swidth - 1) in
    sext t (slice t a ~hi:(a.swidth - 1) ~lo:n) a.swidth

let eq t a b = cmp t Netlist.Eq a b
let ne t a b = cmp t Netlist.Ne a b
let lt t ~signed a b =
  cmp t (Netlist.Lt (if signed then Netlist.Signed else Netlist.Unsigned)) a b
let le t ~signed a b =
  cmp t (Netlist.Le (if signed then Netlist.Signed else Netlist.Unsigned)) a b
let gt t ~signed a b = lt t ~signed b a
let ge t ~signed a b = le t ~signed b a

let mux t sel a b =
  if sel.swidth <> 1 then failwith "Builder.mux: select must be 1 bit";
  check_same "mux" a b;
  match const_of t sel with
  | Some s -> if Bits.to_int s = 1 then a else b
  | None -> pure t (Netlist.Mux (sel.suid, a.suid, b.suid)) a.swidth

let mux_list t sel cases =
  match cases with
  | [] -> invalid_arg "Builder.mux_list: empty"
  | [ only ] -> only
  | _ ->
      (* Balanced selection tree on the bits of [sel]. *)
      let rec build level cases =
        match cases with
        | [ only ] -> only
        | _ ->
            let rec pair = function
              | a :: b :: rest ->
                  mux t (bit t sel level) b a :: pair rest
              | [ a ] -> [ a ]
              | [] -> []
            in
            build (level + 1) (pair cases)
      in
      let needed_bits =
        let n = List.length cases in
        let rec bits k acc = if k >= n then acc else bits (2 * k) (acc + 1) in
        bits 1 0
      in
      if sel.swidth < needed_bits then
        failwith "Builder.mux_list: select too narrow for case count";
      build 0 cases

let unconnected_sentinel = -1

let reg t ?enable ?(init = 0) ~width name =
  let kind =
    Netlist.Reg
      {
        d = unconnected_sentinel;
        enable = Option.map (fun e -> e.suid) enable;
        init = Bits.create ~width init;
      }
  in
  let s = raw_add t kind width (Some name) in
  t.unconnected <- (s.suid, name) :: t.unconnected;
  s

let connect t q d =
  let cell = t.cells.(q.suid) in
  (match cell.nkind with
  | Netlist.Reg r ->
      if r.d <> unconnected_sentinel then
        failwith "Builder.connect: register already connected";
      if d.swidth <> q.swidth then
        failwith
          (Printf.sprintf "Builder.connect: width mismatch (%d vs %d)" q.swidth
             d.swidth);
      cell.nkind <- Netlist.Reg { r with d = d.suid }
  | _ -> failwith "Builder.connect: not a register");
  t.unconnected <- List.filter (fun (u, _) -> u <> q.suid) t.unconnected

let reg_next t ?enable ?init ?(name = "pipe") d =
  let q = reg t ?enable ?init ~width:d.swidth name in
  connect t q d;
  q

let output t name s = t.outs <- t.outs @ [ (name, s.suid) ]

let name t s n =
  t.cells.(s.suid).nname <- Some n;
  s

let mem t name ~size ~width =
  if size < 2 then invalid_arg "Builder.mem: size must be at least 2";
  let mid = List.length t.mems in
  t.mems <- (name, size, width) :: t.mems;
  { mid; msize = size; mwidth = width }

let mem_addr_width m =
  let rec go k acc = if k >= m.msize then acc else go (2 * k) (acc + 1) in
  max 1 (go 1 0)

let mem_read t m addr =
  if width addr <> mem_addr_width m then
    failwith
      (Printf.sprintf "Builder.mem_read: address width %d, expected %d"
         (width addr) (mem_addr_width m));
  pure t (Netlist.Mem_read (m.mid, addr.suid)) m.mwidth

let mem_write t m ~enable ~addr ~data =
  if width enable <> 1 then failwith "Builder.mem_write: enable must be 1 bit";
  if width addr <> mem_addr_width m then failwith "Builder.mem_write: address width";
  if width data <> m.mwidth then failwith "Builder.mem_write: data width";
  t.mem_writes <-
    (m.mid, { Netlist.w_enable = enable.suid; w_addr = addr.suid; w_data = data.suid })
    :: t.mem_writes

let finalize t =
  (match t.unconnected with
  | [] -> ()
  | (_, n) :: _ ->
      failwith
        (Printf.sprintf "Builder.finalize(%s): register %s never connected"
           t.cname n));
  let nodes =
    Array.init t.count (fun i ->
        let c = t.cells.(i) in
        { Netlist.uid = i; width = c.nwidth; kind = c.nkind; name = c.nname })
  in
  let mems =
    List.rev t.mems
    |> List.mapi (fun mem_id (mem_name, mem_size, mem_width) ->
           {
             Netlist.mem_id;
             mem_name;
             mem_size;
             mem_width;
             mem_writes =
               List.rev t.mem_writes
               |> List.filter_map (fun (m, w) -> if m = mem_id then Some w else None);
           })
    |> Array.of_list
  in
  let circuit =
    {
      Netlist.circuit_name = t.cname;
      nodes;
      mems;
      inputs = t.ins;
      outputs = t.outs;
    }
  in
  Netlist.validate circuit;
  circuit
