type cost = { luts : int; ffs : int; dsps : int }

let zero_cost = { luts = 0; ffs = 0; dsps = 0 }

let ( ++ ) a b =
  { luts = a.luts + b.luts; ffs = a.ffs + b.ffs; dsps = a.dsps + b.dsps }

let luts n = { zero_cost with luts = n }
let ffs n = { zero_cost with ffs = n }
let dsps n = { zero_cost with dsps = n }

(* Canonical signed digit recoding: rewrite runs of ones (e.g. 0111 -> 100-1)
   so the number of non-zero digits — hence adders/subtractors — is minimal. *)
let csd_nonzero_digits value =
  let v = abs value in
  let count = ref 0 in
  let v = ref v in
  while !v <> 0 do
    if !v land 1 = 1 then begin
      incr count;
      (* A digit is +1 or -1; choosing -1 when the next bits form a run of
         ones (v mod 4 = 3) shortens the remaining representation. *)
      if !v land 3 = 3 then v := !v + 1 else v := !v - 1
    end;
    v := !v asr 1
  done;
  !count

let csd_adders value =
  match abs value with
  | 0 | 1 -> 0
  | v -> max 0 (csd_nonzero_digits v - 1)

(* Chase constants through extensions and slices so front ends that wrap
   literals before use still get shift-add costing. *)
let rec const_value (c : Netlist.t) (nd : Netlist.node) =
  match nd.kind with
  | Netlist.Const b -> Some (Bits.to_signed_int b)
  | Netlist.Sext a -> const_value c (Netlist.node c a)
  | Netlist.Uext a -> (
      match (Netlist.node c a).kind with
      | Netlist.Const b -> Some (Bits.to_int b)
      | _ -> None)
  | _ -> None

let const_mul_operand (c : Netlist.t) (nd : Netlist.node) =
  match nd.kind with
  | Netlist.Binop (Netlist.Mul, a, b) -> (
      match const_value c (Netlist.node c a) with
      | Some v -> Some v
      | None -> const_value c (Netlist.node c b))
  | _ -> None

let is_pow2_or_zero v =
  let v = abs v in
  v = 0 || v land (v - 1) = 0

(* A LUT6 implements any 6-input function, or two functions of up to five
   shared inputs.  Two-input bitwise ops therefore pack two bits per LUT. *)
let bitwise_luts w = (w + 1) / 2

let dsp_blocks (dev : Device.t) wa wb =
  let ceil_div a b = (a + b - 1) / b in
  ceil_div wa dev.dsp_a_width * ceil_div wb dev.dsp_b_width

let variable_shift_levels w =
  let rec levels k acc = if k >= w then acc else levels (2 * k) (acc + 1) in
  levels 1 0

let node_cost (dev : Device.t) ~use_dsp (c : Netlist.t) (nd : Netlist.node) =
  let w = nd.width in
  match nd.kind with
  | Netlist.Input _ | Netlist.Const _ | Netlist.Slice _ | Netlist.Concat _
  | Netlist.Uext _ | Netlist.Sext _ ->
      zero_cost
  | Netlist.Unop (Netlist.Not, _) ->
      (* Inverters are absorbed into downstream LUT init vectors. *)
      zero_cost
  | Netlist.Mem_read (m, _) ->
      (* Distributed (LUT) RAM: a RAM64x1 per bit plus output muxing for
         deeper memories; write logic is absorbed in the same slices. *)
      let mem = c.mems.(m) in
      let per_bit = (mem.Netlist.mem_size + 63) / 64 in
      luts (mem.Netlist.mem_width * per_bit)
  | Netlist.Unop (Netlist.Neg, _) -> luts w
  | Netlist.Reg _ -> ffs w
  | Netlist.Mux _ -> luts (bitwise_luts w)
  | Netlist.Binop (op, a, b) -> (
      let wa = (Netlist.node c a).width and wb = (Netlist.node c b).width in
      match op with
      | Netlist.And | Netlist.Or | Netlist.Xor -> luts (bitwise_luts w)
      | Netlist.Add | Netlist.Sub -> luts w
      | Netlist.Lt _ | Netlist.Le _ -> luts wa
      | Netlist.Eq | Netlist.Ne ->
          (* Pairwise XNOR packing plus an AND-reduce tree. *)
          luts (bitwise_luts wa + ((wa + 7) / 8))
      | Netlist.Shl | Netlist.Shr | Netlist.Sra ->
          (match const_value c (Netlist.node c b) with
          | Some _ -> zero_cost (* constant shifts are wiring *)
          | None -> luts (w * variable_shift_levels w / 2))
      | Netlist.Mul -> (
          match const_mul_operand c nd with
          | Some v when is_pow2_or_zero v -> zero_cost
          | Some v ->
              let adders = csd_adders v in
              if use_dsp && w >= 10 && adders >= 3 then
                dsps
                  (dsp_blocks dev (min w dev.dsp_a_width)
                     (min w dev.dsp_b_width))
              else
                (* Shift-add network; the 2/3 factor models the sharing a
                   multiple-constant-multiplication pass and ternary
                   (carry-save) adders recover in real synthesis. *)
                luts (((adders * w * 2) + 2) / 3)
          | None ->
              if use_dsp then dsps (dsp_blocks dev wa wb)
              else luts (wa * wb)))

let circuit_cost dev ~use_dsp (c : Netlist.t) =
  Array.fold_left
    (fun acc nd -> acc ++ node_cost dev ~use_dsp c nd)
    zero_cost c.nodes

let io_bits (c : Netlist.t) =
  let port_width (_, u) = (Netlist.node c u).width in
  let sum l = List.fold_left (fun acc p -> acc + port_width p) 0 l in
  sum c.inputs + sum c.outputs + 2
