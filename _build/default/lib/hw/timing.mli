(** Static timing analysis over the mapped netlist.

    Computes the longest register-to-register (or port-to-port) path using
    the {!Device} delay model, the resulting minimum clock period and
    maximum frequency.  Delays mirror the {!Techmap} implementation choices
    (carry chains for adds/compares, CSD shift-add networks or DSP slices
    for multiplies). *)

type path_point = { point_uid : Netlist.uid; point_desc : string }

type result = {
  period_ns : float;       (** minimum achievable clock period *)
  fmax_mhz : float;
  critical_path : path_point list;  (** source first *)
  logic_levels : int;      (** nodes with non-zero delay on the path *)
}

val node_delay : Device.t -> use_dsp:bool -> Netlist.t -> Netlist.node -> float
(** Propagation delay through one node, nanoseconds. *)

val analyze : ?use_dsp:bool -> Device.t -> Netlist.t -> result
(** [use_dsp] defaults to [true] (normal synthesis; the paper disables DSPs
    only for area normalization, not for timing). *)
