(** Automatic pipelining of combinational circuits.

    Splits a purely combinational circuit into [stages] delay-balanced
    stages and inserts register ranks between them (including a rank on the
    outputs), the scheduling XLS performs for its pipelined codegen.  A
    path from any input to any output crosses exactly [stages] registers,
    so the result has a latency of [stages] cycles at an initiation
    interval of one. *)

val retime : ?device:Device.t -> stages:int -> Netlist.t -> Netlist.t
(** @raise Invalid_argument if [stages < 1] or the circuit has registers. *)

val stage_of_nodes : ?device:Device.t -> stages:int -> Netlist.t -> int array
(** The stage (1-based) assigned to each node — exposed for inspection and
    tests. *)
