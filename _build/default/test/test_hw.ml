(* Tests for the hardware substrate: bit vectors, netlist, builder,
   simulator, technology mapping, timing, pipelining, instantiation and
   Verilog emission. *)

open Hw

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Bits ---------------- *)

let test_bits_create () =
  check int "mask" 0xF (Bits.to_int (Bits.create ~width:4 0xFF));
  check int "negative wraps" 0xF (Bits.to_int (Bits.create ~width:4 (-1)));
  check int "signed view" (-1) (Bits.to_signed_int (Bits.create ~width:4 0xF));
  check int "signed positive" 7 (Bits.to_signed_int (Bits.create ~width:4 7));
  Alcotest.check_raises "width 0" (Invalid_argument "Bits.create: width 0 out of [1..62]")
    (fun () -> ignore (Bits.create ~width:0 1))

let test_bits_arith () =
  let b8 v = Bits.create ~width:8 v in
  check int "add wraps" 4 (Bits.to_int (Bits.add (b8 250) (b8 10)));
  check int "sub wraps" 246 (Bits.to_int (Bits.sub (b8 0) (b8 10)));
  check int "mul" 100 (Bits.to_int (Bits.mul (b8 10) (b8 10)));
  check int "neg" 246 (Bits.to_int (Bits.neg (b8 10)));
  check int "mul wide"
    (0x7FFF * 3 land ((1 lsl 40) - 1))
    (Bits.to_int (Bits.mul (Bits.create ~width:40 0x7FFF) (Bits.create ~width:40 3)))

let test_bits_shifts () =
  let b8 v = Bits.create ~width:8 v in
  check int "shl" 0xF0 (Bits.to_int (Bits.shift_left (b8 0x0F) (b8 4)));
  check int "shl overflow" 0 (Bits.to_int (Bits.shift_left (b8 1) (b8 9)));
  check int "shr" 0x0F (Bits.to_int (Bits.shift_right_logical (b8 0xF0) (b8 4)));
  check int "sra keeps sign" (-1)
    (Bits.to_signed_int (Bits.shift_right_arith (b8 0x80) (b8 7)));
  check int "sra past width" (-1)
    (Bits.to_signed_int (Bits.shift_right_arith (b8 0x80) (b8 100)))

let test_bits_cmp () =
  let b4 v = Bits.create ~width:4 v in
  check int "unsigned lt" 1 (Bits.to_int (Bits.lt ~signed:false (b4 2) (b4 14)));
  check int "signed lt" 0 (Bits.to_int (Bits.lt ~signed:true (b4 2) (b4 14)));
  check int "eq" 1 (Bits.to_int (Bits.eq (b4 5) (b4 5)));
  check int "le equal" 1 (Bits.to_int (Bits.le ~signed:true (b4 9) (b4 9)))

let test_bits_structure () =
  let v = Bits.create ~width:8 0b10110100 in
  check int "slice" 0b101 (Bits.to_int (Bits.slice v ~hi:4 ~lo:2));
  check bool "msb" true (Bits.msb v);
  check int "concat"
    0b1011010011
    (Bits.to_int (Bits.concat v (Bits.create ~width:2 0b11)));
  check int "uext" 0b10110100 (Bits.to_int (Bits.uext v 12));
  check int "sext" (-76) (Bits.to_signed_int (Bits.sext v 12));
  check int "range width" 9 (Bits.width_for_signed_range (-256) 255);
  check int "range width small" 1 (Bits.width_for_signed_range (-1) 0)

let bits_props =
  let gen = QCheck.(pair (int_range 1 30) int) in
  [
    QCheck.Test.make ~name:"add is modular" ~count:500 gen (fun (w, v) ->
        let a = Bits.create ~width:w v and b = Bits.create ~width:w (v * 7) in
        Bits.to_int (Bits.add a b) = (Bits.to_int a + Bits.to_int b) land ((1 lsl w) - 1));
    QCheck.Test.make ~name:"neg + add = sub" ~count:500 gen (fun (w, v) ->
        let a = Bits.create ~width:w (v + 3) and b = Bits.create ~width:w v in
        Bits.equal (Bits.sub a b) (Bits.add a (Bits.neg b)));
    QCheck.Test.make ~name:"sext preserves signed value" ~count:500 gen
      (fun (w, v) ->
        let a = Bits.create ~width:w v in
        Bits.to_signed_int (Bits.sext a (w + 10)) = Bits.to_signed_int a);
    QCheck.Test.make ~name:"slice o concat = id" ~count:500 gen (fun (w, v) ->
        let a = Bits.create ~width:w v and b = Bits.create ~width:w (v lxor 5) in
        let c = Bits.concat a b in
        Bits.equal (Bits.slice c ~hi:((2 * w) - 1) ~lo:w) a
        && Bits.equal (Bits.slice c ~hi:(w - 1) ~lo:0) b);
  ]

(* ---------------- Builder & Netlist ---------------- *)

let test_builder_fold () =
  let b = Builder.create "fold" in
  let x = Builder.add b (Builder.const b ~width:8 3) (Builder.const b ~width:8 4) in
  Builder.output b "o" x;
  let c = Builder.finalize b in
  (* constant folding leaves a single const node plus input-free graph *)
  let sim = Sim.create c in
  check int "const folded value" 7 (Sim.get sim "o");
  check bool "no binop survives"
    true
    (Array.for_all
       (fun (n : Netlist.node) ->
         match n.kind with Netlist.Binop _ -> false | _ -> true)
       c.Netlist.nodes)

let test_builder_hashcons () =
  let b = Builder.create "cse" in
  let x = Builder.input b "x" 8 in
  let a1 = Builder.add b x x in
  let a2 = Builder.add b x x in
  check int "same node" (Builder.uid a1) (Builder.uid a2);
  let e1 = Builder.sext b x 16 and e2 = Builder.sext b x 12 in
  check bool "different widths differ" true (Builder.uid e1 <> Builder.uid e2)

let test_builder_mux_list () =
  let b = Builder.create "muxl" in
  let sel = Builder.input b "sel" 3 in
  let cases = List.init 8 (fun i -> Builder.const b ~width:8 (10 + i)) in
  Builder.output b "o" (Builder.mux_list b sel cases);
  let sim = Sim.create (Builder.finalize b) in
  for i = 0 to 7 do
    Sim.set sim "sel" i;
    check int (Printf.sprintf "case %d" i) (10 + i) (Sim.get sim "o")
  done

let test_builder_unconnected () =
  let b = Builder.create "bad" in
  let _q = Builder.reg b ~width:4 "q" in
  (match Builder.finalize b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure for unconnected register")

let test_comb_cycle_detect () =
  (* A combinational cycle through two wires must be rejected. *)
  let b = Builder.create "loop" in
  let q = Builder.reg b ~width:4 "q" in
  Builder.connect b q q;
  Builder.output b "o" q;
  ignore (Builder.finalize b);
  (* self-loop through a register is fine; a pure comb cycle is not
     constructible through the builder API (nodes reference only existing
     nodes), which is itself the guarantee this test documents. *)
  ()

let test_sim_counter () =
  let b = Builder.create "cnt" in
  let en = Builder.input b "en" 1 in
  let q = Builder.reg b ~enable:en ~width:4 "q" in
  Builder.connect b q (Builder.add b q (Builder.one b 4));
  Builder.output b "q" q;
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "en" 1;
  Sim.step_n sim 5;
  check int "counts" 5 (Sim.get sim "q");
  Sim.set sim "en" 0;
  Sim.step_n sim 3;
  check int "enable holds" 5 (Sim.get sim "q");
  Sim.reset sim;
  check int "reset" 0 (Sim.get sim "q")

let test_sim_mem () =
  let b = Builder.create "memtest" in
  let m = Builder.mem b "ram" ~size:16 ~width:8 in
  let we = Builder.input b "we" 1 in
  let addr = Builder.input b "addr" 4 in
  let data = Builder.input b "data" 8 in
  Builder.mem_write b m ~enable:we ~addr ~data;
  Builder.output b "q" (Builder.mem_read b m addr);
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "we" 1;
  Sim.set sim "addr" 3;
  Sim.set sim "data" 77;
  check int "read-before-write" 0 (Sim.get sim "q");
  Sim.step sim;
  Sim.set sim "we" 0;
  check int "written" 77 (Sim.get sim "q");
  Sim.set sim "addr" 4;
  check int "other address" 0 (Sim.get sim "q");
  Sim.reset sim;
  Sim.set sim "addr" 3;
  check int "reset clears memory" 0 (Sim.get sim "q")

(* ---------------- Techmap & Timing ---------------- *)

let test_csd () =
  check int "csd 0" 0 (Techmap.csd_adders 0);
  check int "csd 1" 0 (Techmap.csd_adders 1);
  check int "csd 2" 0 (Techmap.csd_adders 2);
  check int "csd 3" 1 (Techmap.csd_adders 3);
  check int "csd 7 uses NAF" 1 (Techmap.csd_adders 7);
  check int "csd 2841" (Techmap.csd_adders 2841) (Techmap.csd_adders (-2841));
  check bool "csd 181 small" true (Techmap.csd_adders 181 <= 4)

let test_const_mult_cost () =
  let b = Builder.create "cm" in
  let x = Builder.input b "x" 16 in
  let k = Builder.const b ~width:16 2841 in
  Builder.output b "o" (Builder.mul b k x);
  let c = Builder.finalize b in
  let with_dsp = Techmap.circuit_cost Device.xcvu9p ~use_dsp:true c in
  let without = Techmap.circuit_cost Device.xcvu9p ~use_dsp:false c in
  check int "const mult maps to one DSP" 1 with_dsp.Techmap.dsps;
  check int "no DSP when disabled" 0 without.Techmap.dsps;
  check bool "shift-add LUTs" true (without.Techmap.luts > 0);
  check bool "cheaper than generic" true (without.Techmap.luts < 16 * 16)

let test_pow2_mult_free () =
  let b = Builder.create "p2" in
  let x = Builder.input b "x" 16 in
  Builder.output b "o" (Builder.mul b (Builder.const b ~width:16 8) x);
  let c = Builder.finalize b in
  let cost = Techmap.circuit_cost Device.xcvu9p ~use_dsp:false c in
  check int "power-of-two mult is wiring" 0 cost.Techmap.luts

let test_timing_monotonic () =
  (* A chain of two adders is slower than one. *)
  let mk n =
    let b = Builder.create "chain" in
    let x = ref (Builder.input b "x" 32) in
    for _ = 1 to n do
      x := Builder.add b !x (Builder.const b ~width:32 1)
    done;
    Builder.output b "o" !x;
    Builder.finalize b
  in
  let t1 = Timing.analyze Device.xcvu9p (mk 1) in
  let t4 = Timing.analyze Device.xcvu9p (mk 4) in
  check bool "longer chain is slower" true
    (t4.Timing.period_ns > t1.Timing.period_ns);
  check bool "critical path nonempty" true (List.length t4.Timing.critical_path > 0)

let test_synth_report () =
  let b = Builder.create "rep" in
  let x = Builder.input b "x" 8 in
  let q = Builder.reg_next b x in
  Builder.output b "o" q;
  let r = Synth.run (Builder.finalize b) in
  check int "ffs" 8 r.Synth.ffs;
  check int "ios" (8 + 8 + 2) r.Synth.ios;
  check bool "fits device" true (Result.is_ok (Synth.check_fits Device.xcvu9p r))

(* ---------------- Pipeline ---------------- *)

let random_comb_circuit seed =
  (* A random feed-forward circuit over two inputs. *)
  let rng = Random.State.make [| seed |] in
  let b = Builder.create "rand" in
  let nodes = ref [ Builder.input b "a" 16; Builder.input b "b" 16 ] in
  for _ = 1 to 25 do
    let pick () = List.nth !nodes (Random.State.int rng (List.length !nodes)) in
    let x = pick () and y = pick () in
    let n =
      match Random.State.int rng 6 with
      | 0 -> Builder.add b x y
      | 1 -> Builder.sub b x y
      | 2 -> Builder.and_ b x y
      | 3 -> Builder.xor_ b x y
      | 4 -> Builder.mux b (Builder.bit b x 0) x y
      | _ -> Builder.mul b (Builder.const b ~width:16 (1 + Random.State.int rng 200)) x
    in
    nodes := n :: !nodes
  done;
  Builder.output b "o" (List.hd !nodes);
  Builder.finalize b

let pipeline_props =
  [
    QCheck.Test.make ~name:"retime preserves function" ~count:30
      QCheck.(pair (int_range 0 1000) (int_range 1 6))
      (fun (seed, stages) ->
        let c = random_comb_circuit seed in
        let p = Hw.Pipeline.retime ~stages c in
        let sc = Sim.create c and sp = Sim.create p in
        let ok = ref true in
        for i = 0 to 5 do
          let a = (seed * 131) + i and b = (seed * 17) + (3 * i) in
          Sim.set sc "a" a;
          Sim.set sc "b" b;
          Sim.set sp "a" a;
          Sim.set sp "b" b;
          (* flush the pipeline with constant inputs *)
          Sim.step_n sp (stages + 1);
          if Sim.get sc "o" <> Sim.get sp "o" then ok := false
        done;
        !ok);
  ]

let test_pipeline_latency () =
  let c = random_comb_circuit 42 in
  let stages = 4 in
  let p = Hw.Pipeline.retime ~stages c in
  let regs =
    Array.fold_left
      (fun acc n -> if Netlist.is_reg n then acc + 1 else acc)
      0 p.Netlist.nodes
  in
  check bool "has registers" true (regs > 0);
  (* after [stages] cycles with steady inputs the output equals comb *)
  let sc = Sim.create c and sp = Sim.create p in
  Sim.set sc "a" 123;
  Sim.set sc "b" 456;
  Sim.set sp "a" 123;
  Sim.set sp "b" 456;
  Sim.step_n sp stages;
  check int "latency = stages" (Sim.get sc "o") (Sim.get sp "o")

let test_pipeline_rejects_regs () =
  let b = Builder.create "seq" in
  let q = Builder.reg_next b (Builder.input b "x" 4) in
  Builder.output b "o" q;
  let c = Builder.finalize b in
  (match Hw.Pipeline.retime ~stages:2 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

(* ---------------- Instantiate ---------------- *)

let test_stamp_comb () =
  let inner =
    let b = Builder.create "inner" in
    let x = Builder.input b "x" 8 in
    Builder.output b "y" (Builder.add b x (Builder.const b ~width:8 5));
    Builder.finalize b
  in
  let b = Builder.create "outer" in
  let x = Builder.input b "x" 8 in
  let o1 = Instantiate.stamp b inner ~inputs:[ ("x", x) ] in
  let o2 = Instantiate.stamp b inner ~inputs:[ ("x", List.assoc "y" o1) ] in
  Builder.output b "y" (List.assoc "y" o2);
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "x" 1;
  check int "two instances compose" 11 (Sim.get sim "y")

let test_stamp_seq () =
  let inner =
    let b = Builder.create "cnt" in
    let q = Builder.reg b ~width:8 "q" in
    Builder.connect b q (Builder.add b q (Builder.one b 8));
    Builder.output b "q" q;
    Builder.finalize b
  in
  let b = Builder.create "outer" in
  let en = Builder.input b "en" 1 in
  let o = Instantiate.stamp ~enable:en b inner ~inputs:[] in
  Builder.output b "q" (List.assoc "q" o);
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "en" 1;
  Sim.step_n sim 4;
  Sim.set sim "en" 0;
  Sim.step_n sim 4;
  check int "gated instance counter" 4 (Sim.get sim "q")

(* ---------------- Verilog emission round-trip ---------------- *)

let test_verilog_roundtrip () =
  (* Emit a sequential circuit as Verilog, re-parse it with the Vlog front
     end, and check cycle-accurate equivalence. *)
  let b = Builder.create "roundtrip" in
  let x = Builder.input b "x" 12 in
  let acc = Builder.reg b ~width:16 "acc" in
  Builder.connect b acc (Builder.add b acc (Builder.sext b x 16));
  let scaled = Builder.mul b (Builder.const b ~width:16 181) acc in
  Builder.output b "y" (Builder.sra_const b scaled 2);
  let c = Builder.finalize b in
  let src = Verilog.emit c in
  let c2 = Vlog.Elaborate.circuit_of_string src in
  let s1 = Sim.create c and s2 = Sim.create c2 in
  for i = 0 to 20 do
    let v = (i * 37) land 0xFFF in
    Sim.set s1 "x" v;
    Sim.set s2 "x" v;
    check int (Printf.sprintf "cycle %d" i) (Sim.get s1 "y") (Sim.get s2 "y");
    Sim.step s1;
    Sim.step s2
  done

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_verilog_emit_mem () =
  let b = Builder.create "memv" in
  let m = Builder.mem b "ram" ~size:8 ~width:4 in
  let a = Builder.input b "a" 3 in
  Builder.mem_write b m ~enable:(Builder.input b "we" 1) ~addr:a
    ~data:(Builder.input b "d" 4);
  Builder.output b "q" (Builder.mem_read b m a);
  let src = Verilog.emit (Builder.finalize b) in
  check bool "declares memory" true (contains src "ram [0:7];")

let () =
  let qsuite name props = (name, List.map QCheck_alcotest.to_alcotest props) in
  Alcotest.run "hw"
    [
      ( "bits",
        [
          Alcotest.test_case "create/mask" `Quick test_bits_create;
          Alcotest.test_case "arithmetic" `Quick test_bits_arith;
          Alcotest.test_case "shifts" `Quick test_bits_shifts;
          Alcotest.test_case "comparisons" `Quick test_bits_cmp;
          Alcotest.test_case "structure" `Quick test_bits_structure;
        ] );
      qsuite "bits-properties" bits_props;
      ( "builder",
        [
          Alcotest.test_case "constant folding" `Quick test_builder_fold;
          Alcotest.test_case "hash-consing" `Quick test_builder_hashcons;
          Alcotest.test_case "mux_list" `Quick test_builder_mux_list;
          Alcotest.test_case "unconnected register" `Quick test_builder_unconnected;
          Alcotest.test_case "register self-loop ok" `Quick test_comb_cycle_detect;
        ] );
      ( "sim",
        [
          Alcotest.test_case "counter with enable" `Quick test_sim_counter;
          Alcotest.test_case "memory read/write" `Quick test_sim_mem;
        ] );
      ( "techmap",
        [
          Alcotest.test_case "csd recoding" `Quick test_csd;
          Alcotest.test_case "const mult cost" `Quick test_const_mult_cost;
          Alcotest.test_case "pow2 mult free" `Quick test_pow2_mult_free;
        ] );
      ( "timing",
        [
          Alcotest.test_case "monotonic" `Quick test_timing_monotonic;
          Alcotest.test_case "synth report" `Quick test_synth_report;
        ] );
      ( "pipeline",
        Alcotest.test_case "latency" `Quick test_pipeline_latency
        :: Alcotest.test_case "rejects sequential" `Quick test_pipeline_rejects_regs
        :: List.map QCheck_alcotest.to_alcotest pipeline_props );
      ( "instantiate",
        [
          Alcotest.test_case "combinational stamp" `Quick test_stamp_comb;
          Alcotest.test_case "sequential stamp with enable" `Quick test_stamp_seq;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "emit/parse round trip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "memory emission" `Quick test_verilog_emit_mem;
        ] );
    ]
