(* Tests for the source listings and emitters behind the LOC metric, and
   for parser corner cases they rely on. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- BSV emitter ---------------- *)

let test_bsv_emit () =
  let src = Bsv.Emit.emit Bsv.Idct_bsv.optimized_design in
  check bool "has rules" true (contains src "rule load");
  check bool "has commit rule" true (contains src "rule load_commit");
  check bool "has interface" true (contains src "interface");
  check bool "registers declared" true (contains src "mkReg")

let test_bsv_expr_string () =
  let e =
    Bsv.Lang.(Binop (Hw.Netlist.Add, Read { rid = 0; rname = "a"; rwidth = 4; rinit = 0 }, cst 4 3))
  in
  check bool "renders" true (contains (Bsv.Emit.expr_to_string e) "a + 4'd3")

(* ---------------- DSLX emitter ---------------- *)

let test_dslx_emit () =
  let src = Dslx.Emit.emit Dslx.Idct_dslx.program in
  check bool "row_pass fn" true (contains src "fn row_pass");
  check bool "col_pass fn" true (contains src "fn col_pass");
  check bool "top fn" true (contains src "fn idct(m: s12[64]) -> s9[64]");
  check bool "counted for" true (contains src "for (r, mid_acc) in u32:0..u32:8");
  check bool "update builtin" true (contains src "update(")

(* ---------------- C printer ---------------- *)

let test_cprint () =
  let src = Chls.Cprint.emit Chls.Idct_c.program in
  check bool "iclip" true (contains src "int iclip(int x)");
  check bool "short arrays" true (contains src "void idct(short blk[64])");
  check bool "loops" true (contains src "for (i = 0; i < 8; i++)");
  check bool "pointer views" true (contains src "blk + i * 8");
  check bool "constants" true (contains src "565")

let test_cprint_pragmas () =
  let src =
    Chls.Cprint.emit
      ~pragmas:[ ("idct", Chls.Tool.vhls_pragmas Chls.Tool.vhls_optimized) ]
      Chls.Idct_c.program
  in
  check bool "interface pragma" true (contains src "#pragma HLS INTERFACE axis");
  check bool "pipeline pragma" true (contains src "#pragma HLS PIPELINE II=8")

(* ---------------- MaxJ listings ---------------- *)

let test_maxj_listings () =
  let i = Core.Listings.maxj_shared ^ Core.Listings.maxj_initial in
  check bool "kernel class" true (contains i "extends Kernel");
  check bool "manager" true (contains i "addStreamFromCPU");
  let o = Core.Listings.maxj_optimized in
  check bool "stream holds" true (contains o "streamHold")

(* ---------------- registry LOC accounting ---------------- *)

let test_loc_decomposition () =
  List.iter
    (fun tool ->
      let d = Core.Registry.initial tool in
      check bool
        (Core.Design.tool_name tool ^ " loc parts are positive")
        true
        (d.Core.Design.loc_fu > 0 && d.Core.Design.loc_axi >= 0
        && d.Core.Design.loc_conf >= 0);
      check int
        (Core.Design.tool_name tool ^ " loc = sum of parts")
        (d.Core.Design.loc_fu + d.Core.Design.loc_axi + d.Core.Design.loc_conf)
        (Core.Design.loc d))
    Core.Design.all_tools

let test_generated_interfaces_cost_nothing () =
  (* MaxCompiler and Vivado HLS generate their interfaces: L^AXI = 0. *)
  check int "maxj axi loc" 0 (Core.Registry.initial Core.Design.Maxj).Core.Design.loc_axi;
  check int "vhls axi loc" 0
    (Core.Registry.initial Core.Design.Vivado_hls).Core.Design.loc_axi;
  (* Bambu cannot: the hand-written adapter is counted. *)
  check bool "bambu pays for its adapter" true
    ((Core.Registry.initial Core.Design.Bambu).Core.Design.loc_axi > 0)

let test_dslx_config_loc () =
  (* the optimized XLS design differs by exactly one option line *)
  check int "initial has no config" 0
    (Core.Registry.initial Core.Design.Dslx).Core.Design.loc_conf;
  check int "optimized has one option" 1
    (Core.Registry.optimized Core.Design.Dslx).Core.Design.loc_conf;
  check int "delta includes it" 1 (Core.Registry.delta_loc Core.Design.Dslx)

(* ---------------- vlog parser corners the sources rely on ------------- *)

let test_parse_concat_rewind () =
  (* `{3, 4}` is a concat whose first element is a number: exercises the
     parser's rewind between replication and concatenation. *)
  let e = Vlog.Parse.expr_of_string "{4'd3, 4'd4}" in
  (match e with
  | Vlog.Ast.Concat [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected a two-part concat");
  let r = Vlog.Parse.expr_of_string "{4{2'b10}}" in
  match r with
  | Vlog.Ast.Repeat (4, _) -> ()
  | _ -> Alcotest.fail "expected a replication"

let test_parse_no_reset_module () =
  (* modules without the reset idiom still elaborate (init 0) *)
  let src =
    {|module m (clk, rst, q);
  input clk, rst;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk) q <= q + 4'd1;
endmodule|}
  in
  let sim = Hw.Sim.create (Vlog.Elaborate.circuit_of_string src) in
  Hw.Sim.step_n sim 3;
  check int "counts from zero" 3 (Hw.Sim.get sim "q")

let test_parse_instance_output_expr_rejected () =
  let src =
    {|module inner (x, y);
  input x;
  output y;
  assign y = x;
endmodule
module top (a, b);
  input a;
  output b;
  inner u (.x(a), .y(a + 1));
  assign b = a;
endmodule|}
  in
  match Vlog.Elaborate.circuit_of_string ~top:"top" src with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected rejection of expression-connected output"

let test_emitted_verilog_reparses_all_rtl_designs () =
  (* Emit every RTL-style optimized design and re-elaborate it: the
     emitter and parser agree on the full language subset in use. *)
  List.iter
    (fun tool ->
      let d = Core.Registry.optimized tool in
      match d.Core.Design.impl with
      | Core.Design.Stream c ->
          let c = Lazy.force c in
          let src = Hw.Verilog.emit c in
          let c2 = Vlog.Elaborate.circuit_of_string src in
          check bool
            (Core.Design.tool_name tool ^ " round-trips")
            true
            (Hw.Equiv.check ~cycles:24 c c2 = Hw.Equiv.Equivalent)
      | Core.Design.Pcie _ -> ())
    [ Core.Design.Chisel; Core.Design.Bsv ]

(* Fuzz the emit -> parse -> elaborate loop over random circuits. *)
let random_circuit seed =
  let rng = Random.State.make [| seed |] in
  let b = Hw.Builder.create "fuzz" in
  let nodes = ref [ Hw.Builder.input b "a" 12; Hw.Builder.input b "b" 12 ] in
  let regs = ref [] in
  for _ = 1 to 18 do
    let pick () = List.nth !nodes (Random.State.int rng (List.length !nodes)) in
    let x = pick () and y = pick () in
    let n =
      match Random.State.int rng 9 with
      | 0 -> Hw.Builder.add b x y
      | 1 -> Hw.Builder.sub b x y
      | 2 -> Hw.Builder.xor_ b x y
      | 3 -> Hw.Builder.mux b (Hw.Builder.bit b x 0) x y
      | 4 -> Hw.Builder.mul b (Hw.Builder.const b ~width:12 (Random.State.int rng 100)) x
      | 5 -> Hw.Builder.sra_const b x (Random.State.int rng 6)
      | 6 -> Hw.Builder.slice b (Hw.Builder.concat b x y) ~hi:17 ~lo:6
      | 7 ->
          let q = Hw.Builder.reg_next b ~name:(Printf.sprintf "q%d" (List.length !regs)) x in
          regs := q :: !regs;
          q
      | _ -> Hw.Builder.lt b ~signed:(Random.State.bool rng) x y |> fun c ->
             Hw.Builder.mux b c x y
    in
    nodes := n :: !nodes
  done;
  Hw.Builder.output b "o" (List.hd !nodes);
  Hw.Builder.finalize b

let verilog_roundtrip_fuzz =
  QCheck.Test.make ~name:"emit -> parse -> elaborate is the identity" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let c = random_circuit seed in
      let c2 = Vlog.Elaborate.circuit_of_string (Hw.Verilog.emit c) in
      Hw.Equiv.check ~cycles:20 ~seed c c2 = Hw.Equiv.Equivalent)

let () =
  Alcotest.run "listings"
    [
      ( "emitters",
        [
          Alcotest.test_case "bsv module" `Quick test_bsv_emit;
          Alcotest.test_case "bsv expressions" `Quick test_bsv_expr_string;
          Alcotest.test_case "dslx program" `Quick test_dslx_emit;
          Alcotest.test_case "c program" `Quick test_cprint;
          Alcotest.test_case "c pragmas" `Quick test_cprint_pragmas;
          Alcotest.test_case "maxj kernels" `Quick test_maxj_listings;
        ] );
      ( "loc accounting",
        [
          Alcotest.test_case "decomposition" `Quick test_loc_decomposition;
          Alcotest.test_case "generated interfaces" `Quick test_generated_interfaces_cost_nothing;
          Alcotest.test_case "xls single option" `Quick test_dslx_config_loc;
        ] );
      ( "vlog corners",
        [
          Alcotest.test_case "concat rewind" `Quick test_parse_concat_rewind;
          Alcotest.test_case "no-reset module" `Quick test_parse_no_reset_module;
          Alcotest.test_case "instance output must be a wire" `Quick
            test_parse_instance_output_expr_rejected;
          Alcotest.test_case "emit/reparse RTL designs" `Slow
            test_emitted_verilog_reparses_all_rtl_designs;
          QCheck_alcotest.to_alcotest verilog_roundtrip_fuzz;
        ] );
    ]
