(* Additional substrate tests: constant-shift helpers, comparison sugar,
   the equivalence checker, VCD waves, device capacity and report sanity. *)

open Hw

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- builder op sugar vs Bits semantics ---------------- *)

let const_shift_props =
  let gen = QCheck.(triple (int_range 2 24) int (int_range 0 30)) in
  let build f w v n =
    let b = Builder.create "p" in
    let x = Builder.const b ~width:w v in
    Builder.output b "o" (f b x n);
    let sim = Sim.create (Builder.finalize b) in
    Sim.get sim "o"
  in
  [
    QCheck.Test.make ~name:"shl_const = Bits.shift_left" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.shl_const w v n
        = Bits.to_int (Bits.shift_left (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
    QCheck.Test.make ~name:"shr_const = Bits.shift_right_logical" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.shr_const w v n
        = Bits.to_int
            (Bits.shift_right_logical (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
    QCheck.Test.make ~name:"sra_const = Bits.shift_right_arith" ~count:200 gen
      (fun (w, v, n) ->
        build Builder.sra_const w v n
        = Bits.to_int
            (Bits.shift_right_arith (Bits.create ~width:w v) (Bits.create ~width:6 (min n 63))));
  ]

let test_cmp_sugar () =
  let b = Builder.create "cmp" in
  let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
  Builder.output b "gt" (Builder.gt b ~signed:true x y);
  Builder.output b "ge" (Builder.ge b ~signed:true x y);
  let sim = Sim.create (Builder.finalize b) in
  Sim.set sim "x" 0xFF (* -1 *);
  Sim.set sim "y" 1;
  check int "-1 > 1 signed" 0 (Sim.get sim "gt");
  Sim.set sim "y" 0xFE (* -2 *);
  check int "-1 > -2" 1 (Sim.get sim "gt");
  Sim.set sim "y" 0xFF;
  check int "-1 >= -1" 1 (Sim.get sim "ge")

let test_concat_list () =
  let b = Builder.create "cl" in
  let parts = List.map (fun v -> Builder.const b ~width:4 v) [ 0xA; 0xB; 0xC ] in
  Builder.output b "o" (Builder.concat_list b parts);
  let sim = Sim.create (Builder.finalize b) in
  check int "abc" 0xABC (Sim.get sim "o")

let test_mux_list_narrow_select () =
  let b = Builder.create "ml" in
  let sel = Builder.input b "s" 1 in
  (match Builder.mux_list b sel (List.init 4 (fun i -> Builder.const b ~width:4 i)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected select-width failure")

(* ---------------- equivalence checker ---------------- *)

let adder w name =
  let b = Builder.create name in
  let x = Builder.input b "x" w and y = Builder.input b "y" w in
  Builder.output b "s" (Builder.add b x y);
  Builder.finalize b

let test_equiv_accepts () =
  match Equiv.check (adder 8 "a") (adder 8 "b") with
  | Equiv.Equivalent -> ()
  | r -> Alcotest.fail (Format.asprintf "unexpected %a" Equiv.pp_result r)

let test_equiv_detects () =
  let broken =
    let b = Builder.create "broken" in
    let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
    Builder.output b "s" (Builder.sub b x y);
    Builder.finalize b
  in
  (match Equiv.check (adder 8 "a") broken with
  | Equiv.Mismatch { port = "s"; _ } -> ()
  | Equiv.Mismatch _ | Equiv.Equivalent -> Alcotest.fail "expected mismatch on s")

let test_equiv_port_check () =
  match Equiv.check (adder 8 "a") (adder 9 "b") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port width rejection"

let test_equiv_settle () =
  (* A 1-deep pipeline of the adder is equivalent after one settle cycle
     when inputs are held... it is not cycle-identical, and Equiv with
     settle=0 must catch that. *)
  let piped =
    let b = Builder.create "p" in
    let x = Builder.input b "x" 8 and y = Builder.input b "y" 8 in
    Builder.output b "s" (Builder.reg_next b (Builder.add b x y));
    Builder.finalize b
  in
  (match Equiv.check (adder 8 "a") piped with
  | Equiv.Mismatch _ -> ()
  | Equiv.Equivalent -> Alcotest.fail "registered adder is not cycle-identical")

(* ---------------- waves ---------------- *)

let test_vcd () =
  let b = Builder.create "wave" in
  let q = Builder.reg b ~width:4 "count" in
  Builder.connect b q (Builder.add b q (Builder.one b 4));
  Builder.output b "o" q;
  let sim = Sim.create (Builder.finalize b) in
  let w = Waves.create sim in
  Waves.run w 5;
  let vcd = Waves.to_string w in
  check bool "has timescale" true (contains vcd "$timescale");
  check bool "declares count" true (contains vcd "count $end");
  check bool "has time 5" true (contains vcd "#5");
  check bool "records 0101 at some point" true (contains vcd "b0101 ");
  check int "sim advanced" 5 (Sim.cycle_count sim)

(* ---------------- device / synth ---------------- *)

let test_capacity_check () =
  let tiny =
    { Device.xcvu9p with Device.lut_capacity = 10; device_name = "tiny" }
  in
  let big =
    let b = Builder.create "big" in
    let x = Builder.input b "x" 32 and y = Builder.input b "y" 32 in
    Builder.output b "o" (Builder.mul b x y);
    Builder.finalize b
  in
  let r = Synth.run ~device:tiny big in
  check bool "over capacity detected" true
    (Result.is_error (Synth.check_fits tiny r));
  check bool "fits the real device" true
    (Result.is_ok (Synth.check_fits Device.xcvu9p r))

let test_utilization () =
  let u = Device.utilization Device.xcvu9p ~luts:1_182_240 ~ffs:0 ~dsps:0 in
  check bool "full LUTs = 1.0" true (abs_float (u -. 1.0) < 1e-9);
  let u2 = Device.utilization Device.xcvu9p ~luts:0 ~ffs:0 ~dsps:6840 in
  check bool "full DSPs = 1.0" true (abs_float (u2 -. 1.0) < 1e-9)

let test_io_bits () =
  let b = Builder.create "io" in
  let x = Builder.input b "x" 12 in
  Builder.output b "o" (Builder.reg_next b x);
  let c = Builder.finalize b in
  check int "12 in + 12 out + clk + rst" 26 (Techmap.io_bits c)

let test_netlist_stats () =
  let b = Builder.create "st" in
  let x = Builder.input b "x" 8 in
  Builder.output b "o" (Builder.add b x (Builder.reg_next b x));
  let stats = Netlist.stats (Builder.finalize b) in
  check int "one add" 1 (List.assoc "add" stats);
  check int "one reg" 1 (List.assoc "reg" stats);
  check int "one input" 1 (List.assoc "input" stats)

let test_mem_read_costed_as_lutram () =
  let b = Builder.create "ram" in
  let m = Builder.mem b "ram" ~size:64 ~width:16 in
  let a = Builder.input b "a" 6 in
  Builder.mem_write b m ~enable:(Builder.input b "we" 1) ~addr:a
    ~data:(Builder.input b "d" 16);
  Builder.output b "q" (Builder.mem_read b m a);
  let r = Synth.run (Builder.finalize b) in
  check bool "a 64x16 LUTRAM costs tens of LUTs, not thousands" true
    (r.Synth.luts > 0 && r.Synth.luts < 100);
  check int "no flip-flops for the array" 0 r.Synth.ffs

let () =
  Alcotest.run "hw-extra"
    [
      ( "builder-sugar",
        Alcotest.test_case "signed gt/ge" `Quick test_cmp_sugar
        :: Alcotest.test_case "concat_list" `Quick test_concat_list
        :: Alcotest.test_case "mux_list narrow select" `Quick test_mux_list_narrow_select
        :: List.map QCheck_alcotest.to_alcotest const_shift_props );
      ( "equiv",
        [
          Alcotest.test_case "accepts equals" `Quick test_equiv_accepts;
          Alcotest.test_case "detects difference" `Quick test_equiv_detects;
          Alcotest.test_case "port discipline" `Quick test_equiv_port_check;
          Alcotest.test_case "cycle-exact by default" `Quick test_equiv_settle;
        ] );
      ("waves", [ Alcotest.test_case "vcd output" `Quick test_vcd ]);
      ( "device",
        [
          Alcotest.test_case "capacity check" `Quick test_capacity_check;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "io bits" `Quick test_io_bits;
          Alcotest.test_case "netlist stats" `Quick test_netlist_stats;
          Alcotest.test_case "LUTRAM cost" `Quick test_mem_read_costed_as_lutram;
        ] );
    ]
