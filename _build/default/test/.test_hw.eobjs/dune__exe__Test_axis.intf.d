test/test_axis.mli:
