test/test_maxj.mli:
