test/test_bsv.mli:
