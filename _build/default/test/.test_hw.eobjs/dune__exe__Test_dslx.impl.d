test/test_dslx.ml: Alcotest Array Axis Dslx Hw Idct List Printf QCheck QCheck_alcotest Result
