test/test_dslx.mli:
