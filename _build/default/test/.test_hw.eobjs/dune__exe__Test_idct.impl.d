test/test_idct.ml: Alcotest Array Idct List QCheck QCheck_alcotest
