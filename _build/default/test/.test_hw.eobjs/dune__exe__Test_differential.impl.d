test/test_differential.ml: Alcotest Array Axis Chls Dslx Hw Idct List QCheck QCheck_alcotest Random
