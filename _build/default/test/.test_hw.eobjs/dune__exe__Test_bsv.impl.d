test/test_bsv.ml: Alcotest Array Axis Bsv Hw Idct List Printf QCheck QCheck_alcotest Random
