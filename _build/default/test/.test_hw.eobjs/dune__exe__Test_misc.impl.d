test/test_misc.ml: Alcotest Array Axis Bsv Core Dslx Float Hw Idct List Maxj Printf
