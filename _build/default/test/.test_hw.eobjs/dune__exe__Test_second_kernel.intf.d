test/test_second_kernel.mli:
