test/test_chisel.ml: Alcotest Axis Chisel Hw Idct List QCheck QCheck_alcotest
