test/test_vlog.ml: Alcotest Array Core Hw Idct List Printf String Vlog
