test/test_chls.ml: Alcotest Array Axis Chls Hashtbl Idct List Option
