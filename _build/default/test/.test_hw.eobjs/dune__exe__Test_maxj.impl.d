test/test_maxj.ml: Alcotest Array Hw Idct List Maxj String
