test/test_listings.ml: Alcotest Bsv Chls Core Dslx Hw Lazy List Printf QCheck QCheck_alcotest Random String Vlog
