test/test_idct.mli:
