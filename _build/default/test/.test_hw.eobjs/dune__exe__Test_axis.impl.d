test/test_axis.ml: Alcotest Array Axis Builder Chisel Hw Idct List
