test/test_integration.ml: Alcotest Array Axis Chls Core Design Dslx Hw Idct Lazy List Registry String
