test/test_hw_extra.ml: Alcotest Array Bits Builder Device Equiv Format Hw Interp List Netlist Printf QCheck QCheck_alcotest Random Result Sim String Synth Techmap Waves
