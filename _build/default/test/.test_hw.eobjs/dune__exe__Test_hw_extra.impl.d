test/test_hw_extra.ml: Alcotest Bits Builder Device Equiv Format Hw List Netlist QCheck QCheck_alcotest Result Sim String Synth Techmap Waves
