test/test_chls.mli:
