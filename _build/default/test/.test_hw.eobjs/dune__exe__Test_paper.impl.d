test/test_paper.ml: Alcotest Core List Printf
