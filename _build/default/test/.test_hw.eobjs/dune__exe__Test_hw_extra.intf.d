test/test_hw_extra.mli:
