test/test_second_kernel.ml: Alcotest Array Axis Chls Core Dslx Idct List Printf
