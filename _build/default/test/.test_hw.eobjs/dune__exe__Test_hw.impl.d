test/test_hw.ml: Alcotest Array Bits Builder Device Hw Instantiate List Netlist Printf QCheck QCheck_alcotest Random Result Sim String Synth Techmap Timing Verilog Vlog
