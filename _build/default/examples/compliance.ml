(* IEEE Std 1180-1990 accuracy run: the software models at full depth,
   then two hardware designs at gate level (fewer blocks — cycle-accurate
   simulation of tens of thousands of nodes is slower than software). *)

let report name stats_list =
  Format.printf "%s:@." name;
  List.iter
    (fun ((r : Idct.Ieee1180.range), s, (v : Idct.Ieee1180.verdict)) ->
      Format.printf "  range (%d, %d) sign %+d: %a -> %s@." r.lo r.hi r.sign
        Idct.Ieee1180.pp_stats s
        (if v.passed then "PASS" else String.concat "; " v.failures))
    stats_list

let () =
  report "reference fixed-point model (10000 blocks)"
    (Idct.Ieee1180.run ~blocks:10000 Idct.Chenwang.idct);
  report "C program via interpreter (2000 blocks)"
    (Idct.Ieee1180.run ~blocks:2000 Chls.Idct_c.run);
  let gate_level tool =
    let d = Core.Registry.optimized tool in
    match d.Core.Design.impl with
    | Core.Design.Stream c ->
        let c = Lazy.force c in
        report
          (Printf.sprintf "%s optimized, gate level (500 blocks)"
             (Core.Design.tool_name tool))
          (Idct.Ieee1180.run ~blocks:500 (Axis.Driver.transform c))
    | Core.Design.Pcie _ -> ()
  in
  gate_level Core.Design.Verilog;
  gate_level Core.Design.Vivado_hls
