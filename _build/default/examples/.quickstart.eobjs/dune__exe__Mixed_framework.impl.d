examples/mixed_framework.ml: Axis Chisel Chls Format Hw Idct List Printf
