examples/compliance.ml: Axis Chls Core Format Idct Lazy List Printf String
