examples/custom_kernel.ml: Array Axis Chls Format Hw Idct List
