examples/quickstart.mli:
