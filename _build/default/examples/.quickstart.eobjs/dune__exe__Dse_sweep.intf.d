examples/dse_sweep.mli:
