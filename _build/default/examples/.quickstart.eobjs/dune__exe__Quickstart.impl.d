examples/quickstart.ml: Axis Core Format Hw Idct Lazy List String
