examples/compliance.mli:
