examples/jpeg_decode.mli:
