examples/dse_sweep.ml: Axis Dslx Format Hw Idct List Printf
