examples/mixed_framework.mli:
