examples/jpeg_decode.ml: Array Axis Core Idct Lazy List Printf
